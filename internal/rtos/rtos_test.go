package rtos

import (
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/vm"
)

// chainNet builds env -> A -> B -> out with pure relay machines whose
// reactions cost the given cycles.
func chainNet() (*cfsm.Network, *cfsm.Signal, *cfsm.Signal, *cfsm.CFSM, *cfsm.CFSM) {
	n := cfsm.NewNetwork("chain")
	in := n.NewSignal("in", true)
	mid := n.NewSignal("mid", true)
	out := n.NewSignal("out", true)
	a := cfsm.New("A")
	a.AttachInput(in)
	a.AttachOutput(mid)
	pa := a.Present(in)
	a.AddTransition([]cfsm.Cond{cfsm.On(pa, 1)}, a.Emit(mid))
	b := cfsm.New("B")
	b.AttachInput(mid)
	b.AttachOutput(out)
	pb := b.Present(mid)
	b.AddTransition([]cfsm.Cond{cfsm.On(pb, 1)}, b.Emit(out))
	if err := n.Add(a); err != nil {
		panic(err)
	}
	if err := n.Add(b); err != nil {
		panic(err)
	}
	return n, in, out, a, b
}

// mkBehavioral returns a task factory with fixed execution cost.
func mkBehavioral(cost int64) func(m *cfsm.CFSM) (*Task, error) {
	return func(m *cfsm.CFSM) (*Task, error) {
		mm := m
		return NewTask(mm, Infallible(mm.React), func(cfsm.Snapshot) int64 { return cost }), nil
	}
}

func findEmission(trace []TraceEvent, sig *cfsm.Signal) (TraceEvent, bool) {
	for _, e := range trace {
		if e.Signal == sig && e.From != "env" && e.From != "poll" {
			return e, true
		}
	}
	return TraceEvent{}, false
}

func TestChainDelivery(t *testing.T) {
	n, in, out, _, _ := chainNet()
	cfg := DefaultConfig()
	sys, err := NewSystem(n, cfg, mkBehavioral(100))
	if err != nil {
		t.Fatal(err)
	}
	sys.EmitEnv(in, 0)
	if err := sys.Advance(10000); err != nil {
		t.Fatal(err)
	}
	e, ok := findEmission(sys.Trace, out)
	if !ok {
		t.Fatalf("out never emitted; trace: %+v", sys.Trace)
	}
	// Latency: ISR + schedule + A(100) + schedule + B(100).
	want := cfg.ISROverhead + 2*cfg.ScheduleOverhead + 200
	if e.Time != want {
		t.Errorf("out at %d cycles, want %d", e.Time, want)
	}
	if sys.ScheduleCalls != 2 || sys.Interrupts != 1 {
		t.Errorf("schedule=%d interrupts=%d", sys.ScheduleCalls, sys.Interrupts)
	}
}

func TestFreezeSemantics(t *testing.T) {
	// An event arriving while the task runs must not be consumed by
	// the in-flight execution but by the next one (Section IV-D).
	n := cfsm.NewNetwork("fz")
	x := n.NewSignal("x", true)
	o := n.NewSignal("o", false)
	m := cfsm.New("M")
	m.AttachInput(x)
	m.AttachOutput(o)
	cnt := m.AddState("cnt", 0, 0)
	p := m.Present(x)
	m.AddTransition([]cfsm.Cond{cfsm.On(p, 1)},
		m.Assign(cnt, expr.Add(expr.V("cnt"), expr.C(1))),
		m.EmitV(o, expr.V("cnt")))
	if err := n.Add(m); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	sys, err := NewSystem(n, cfg, mkBehavioral(500))
	if err != nil {
		t.Fatal(err)
	}
	sys.EmitEnv(x, 0)
	if err := sys.Advance(100); err != nil { // task now mid-flight
		t.Fatal(err)
	}
	sys.EmitEnv(x, 0) // lands in the freeze window
	if err := sys.Advance(50000); err != nil {
		t.Fatal(err)
	}
	task := sys.TaskFor(m)
	if task.Executions != 2 {
		t.Fatalf("executions = %d, want 2 (second event preserved)", task.Executions)
	}
	if got := task.State(cnt); got != 2 {
		t.Errorf("cnt = %d, want 2", got)
	}
}

func TestOnePlaceBufferLoss(t *testing.T) {
	n := cfsm.NewNetwork("loss")
	x := n.NewSignal("x", true)
	m := cfsm.New("M")
	m.AttachInput(x)
	p := m.Present(x)
	st := m.AddState("s", 0, 0)
	m.AddTransition([]cfsm.Cond{cfsm.On(p, 1)}, m.Assign(st, expr.Add(expr.V("s"), expr.C(1))))
	if err := n.Add(m); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	sys, err := NewSystem(n, cfg, mkBehavioral(1000))
	if err != nil {
		t.Fatal(err)
	}
	// Three events in the freeze window: the buffer holds one.
	sys.EmitEnv(x, 0)
	_ = sys.Advance(100) // past ISR + schedule: the task is mid-flight
	sys.EmitEnv(x, 0)
	sys.EmitEnv(x, 0)
	sys.EmitEnv(x, 0)
	_ = sys.Advance(100000)
	task := sys.TaskFor(m)
	if task.Lost != 2 {
		t.Errorf("lost = %d, want 2", task.Lost)
	}
	if task.State(st) != 2 {
		t.Errorf("s = %d, want 2 (first + one buffered)", task.State(st))
	}
}

func TestStaticPriorityOrder(t *testing.T) {
	n := cfsm.NewNetwork("prio")
	x := n.NewSignal("x", true)
	lo := n.NewSignal("lo", true)
	hi := n.NewSignal("hi", true)
	mLo := cfsm.New("low")
	mLo.AttachInput(x)
	mLo.AttachOutput(lo)
	pl := mLo.Present(x)
	mLo.AddTransition([]cfsm.Cond{cfsm.On(pl, 1)}, mLo.Emit(lo))
	mHi := cfsm.New("high")
	mHi.AttachInput(x)
	mHi.AttachOutput(hi)
	ph := mHi.Present(x)
	mHi.AddTransition([]cfsm.Cond{cfsm.On(ph, 1)}, mHi.Emit(hi))
	if err := n.Add(mLo); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(mHi); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Policy = StaticPriority
	cfg.Priority = map[*cfsm.CFSM]int{mLo: 1, mHi: 5}
	sys, err := NewSystem(n, cfg, mkBehavioral(100))
	if err != nil {
		t.Fatal(err)
	}
	sys.EmitEnv(x, 0)
	if err := sys.Advance(10000); err != nil {
		t.Fatal(err)
	}
	eh, okH := findEmission(sys.Trace, hi)
	el, okL := findEmission(sys.Trace, lo)
	if !okH || !okL {
		t.Fatal("both tasks must run")
	}
	if eh.Time >= el.Time {
		t.Errorf("high-priority task finished at %d, low at %d", eh.Time, el.Time)
	}
}

func TestPreemption(t *testing.T) {
	n := cfsm.NewNetwork("pre")
	x := n.NewSignal("x", true)
	y := n.NewSignal("y", true)
	lo := n.NewSignal("lo", true)
	hi := n.NewSignal("hi", true)
	mLo := cfsm.New("low")
	mLo.AttachInput(x)
	mLo.AttachOutput(lo)
	pl := mLo.Present(x)
	mLo.AddTransition([]cfsm.Cond{cfsm.On(pl, 1)}, mLo.Emit(lo))
	mHi := cfsm.New("high")
	mHi.AttachInput(y)
	mHi.AttachOutput(hi)
	ph := mHi.Present(y)
	mHi.AddTransition([]cfsm.Cond{cfsm.On(ph, 1)}, mHi.Emit(hi))
	if err := n.Add(mLo); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(mHi); err != nil {
		t.Fatal(err)
	}
	mk := func(m *cfsm.CFSM) (*Task, error) {
		cost := int64(100)
		if m.Name == "low" {
			cost = 10000
		}
		mm := m
		return NewTask(mm, Infallible(mm.React), func(cfsm.Snapshot) int64 { return cost }), nil
	}

	run := func(preempt bool) (hiT, loT int64) {
		cfg := DefaultConfig()
		cfg.Policy = StaticPriority
		cfg.Preemptive = preempt
		cfg.Priority = map[*cfsm.CFSM]int{mLo: 1, mHi: 5}
		sys, err := NewSystem(n, cfg, mk)
		if err != nil {
			t.Fatal(err)
		}
		sys.EmitEnv(x, 0) // long low task starts
		_ = sys.Advance(500)
		sys.EmitEnv(y, 0) // high arrives mid-flight
		_ = sys.Advance(200000)
		eh, ok1 := findEmission(sys.Trace, hi)
		el, ok2 := findEmission(sys.Trace, lo)
		if !ok1 || !ok2 {
			t.Fatal("both must complete")
		}
		return eh.Time, el.Time
	}
	hiPre, loPre := run(true)
	hiNo, _ := run(false)
	if hiPre >= hiNo {
		t.Errorf("preemption must shorten the high task's response: %d vs %d", hiPre, hiNo)
	}
	if hiPre >= loPre {
		t.Errorf("preemptive: high must finish before the preempted low resumes")
	}
}

func TestPollingVersusInterruptLatency(t *testing.T) {
	n, in, out, _, _ := chainNet()
	runWith := func(d Delivery) int64 {
		cfg := DefaultConfig()
		cfg.PollPeriod = 5000
		cfg.Deliver = map[*cfsm.Signal]Delivery{in: d}
		sys, err := NewSystem(n, cfg, mkBehavioral(100))
		if err != nil {
			t.Fatal(err)
		}
		_ = sys.Advance(100) // event arrives between poll ticks
		sys.EmitEnv(in, 0)
		_ = sys.Advance(100000)
		e, ok := findEmission(sys.Trace, out)
		if !ok {
			t.Fatal("no output")
		}
		return e.Time - 100
	}
	intLat := runWith(Interrupt)
	polLat := runWith(Polling)
	if polLat <= intLat {
		t.Errorf("polling latency (%d) must exceed interrupt latency (%d)", polLat, intLat)
	}
	// Polling adds up to one period; with the event at t=100 and the
	// first poll at 5000, the delivery delay is ~4900.
	if polLat < 4000 {
		t.Errorf("polling latency %d implausibly low", polLat)
	}
}

func TestInISRImmediateAttention(t *testing.T) {
	n, in, out, a, _ := chainNet()
	_ = a
	cfg := DefaultConfig()
	cfg.InISR = map[*cfsm.Signal]bool{in: true}
	sys, err := NewSystem(n, cfg, mkBehavioral(100))
	if err != nil {
		t.Fatal(err)
	}
	// Keep the CPU busy with B's machine? Instead check that A runs
	// without a scheduler call: only B's execution needs one.
	sys.EmitEnv(in, 0)
	_ = sys.Advance(100000)
	if _, ok := findEmission(sys.Trace, out); !ok {
		t.Fatal("no output")
	}
	if sys.ScheduleCalls != 1 {
		t.Errorf("expected 1 scheduler call (A ran inside the ISR), got %d", sys.ScheduleCalls)
	}
}

func TestHardwarePartition(t *testing.T) {
	n, in, out, a, _ := chainNet()
	cfg := DefaultConfig()
	cfg.HW = map[*cfsm.CFSM]bool{a: true}
	cfg.HWDelay = 3
	sys, err := NewSystem(n, cfg, mkBehavioral(100))
	if err != nil {
		t.Fatal(err)
	}
	sys.EmitEnv(in, 0)
	if err := sys.Advance(100000); err != nil {
		t.Fatal(err)
	}
	e, ok := findEmission(sys.Trace, out)
	if !ok {
		t.Fatal("no output")
	}
	// A reacts in hardware after 3 cycles; its emission interrupts
	// the CPU for B.
	want := cfg.HWDelay + cfg.ISROverhead + cfg.ScheduleOverhead + 100
	if e.Time != want {
		t.Errorf("latency %d, want %d", e.Time, want)
	}
	if sys.Interrupts != 1 {
		t.Errorf("interrupts = %d, want 1 (hw->sw)", sys.Interrupts)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	n := cfsm.NewNetwork("rr")
	x := n.NewSignal("x", true)
	var outs []*cfsm.Signal
	var ms []*cfsm.CFSM
	for i := 0; i < 3; i++ {
		o := n.NewSignal(string(rune('a'+i)), true)
		outs = append(outs, o)
		m := cfsm.New("m" + string(rune('0'+i)))
		m.AttachInput(x)
		m.AttachOutput(o)
		p := m.Present(x)
		m.AddTransition([]cfsm.Cond{cfsm.On(p, 1)}, m.Emit(o))
		if err := n.Add(m); err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	cfg := DefaultConfig()
	sys, err := NewSystem(n, cfg, mkBehavioral(50))
	if err != nil {
		t.Fatal(err)
	}
	sys.EmitEnv(x, 0)
	_ = sys.Advance(100000)
	var times []int64
	for _, o := range outs {
		e, ok := findEmission(sys.Trace, o)
		if !ok {
			t.Fatalf("output %s missing", o.Name)
		}
		times = append(times, e.Time)
	}
	if !(times[0] < times[1] && times[1] < times[2]) {
		t.Errorf("round-robin order violated: %v", times)
	}
}

func TestSchedulabilityLLAndRTA(t *testing.T) {
	// Classic example: three tasks, U ~ 0.76 < LL bound for n=3 is
	// 0.7797 -> schedulable by bound.
	specs := []TaskSpec{
		{Name: "t1", WCET: 20, Period: 100},
		{Name: "t2", WCET: 40, Period: 150},
		{Name: "t3", WCET: 100, Period: 350},
	}
	rep := Schedulability(specs, 0)
	if !rep.ByBound {
		t.Errorf("U=%.3f bound=%.3f: should pass the LL test", rep.Utilization, rep.LLBound)
	}
	if !rep.Schedulable {
		t.Error("response-time analysis must also pass")
	}
	// Overload: U > 1 must fail.
	bad := []TaskSpec{
		{Name: "t1", WCET: 60, Period: 100},
		{Name: "t2", WCET: 60, Period: 100},
	}
	rep2 := Schedulability(bad, 0)
	if rep2.Schedulable {
		t.Error("overloaded set must be unschedulable")
	}
	// The RTA can prove sets beyond the LL bound schedulable.
	edge := []TaskSpec{
		{Name: "t1", WCET: 50, Period: 100},
		{Name: "t2", WCET: 50, Period: 200},
		{Name: "t3", WCET: 100, Period: 400},
	}
	rep3 := Schedulability(edge, 0)
	if rep3.ByBound {
		t.Errorf("U=%.3f should exceed the LL bound %.3f", rep3.Utilization, rep3.LLBound)
	}
	if !rep3.Schedulable {
		t.Error("harmonic set must pass response-time analysis")
	}
}

func TestSizeModel(t *testing.T) {
	n, _, _, _, _ := chainNet()
	cfg := DefaultConfig()
	prof := vm.HC11()
	gen := SizeEstimate(prof, n, cfg)
	com := CommercialSizeEstimate(prof, n, cfg)
	if gen.CodeBytes <= 0 || gen.DataBytes <= 0 {
		t.Fatalf("degenerate size: %+v", gen)
	}
	if gen.CodeBytes >= com.CodeBytes {
		t.Errorf("generated RTOS (%d B) must be smaller than commercial (%d B)",
			gen.CodeBytes, com.CodeBytes)
	}
	if gen.DataBytes >= com.DataBytes {
		t.Errorf("generated RTOS RAM (%d B) must be smaller than commercial (%d B)",
			gen.DataBytes, com.DataBytes)
	}
	// Priority/preemption adds code.
	cfg2 := cfg
	cfg2.Policy = StaticPriority
	cfg2.Preemptive = true
	gen2 := SizeEstimate(prof, n, cfg2)
	if gen2.CodeBytes <= gen.CodeBytes {
		t.Error("preemptive priority scheduler must cost more code")
	}
}

func TestGenerateC(t *testing.T) {
	n, in, out, a, b := chainNet()
	cfg := DefaultConfig()
	sigID := map[*cfsm.Signal]int{}
	for i, s := range n.Signals {
		sigID[s] = i
	}
	src := GenerateC(n, cfg, sigID)
	for _, needle := range []string{
		"polis_scheduler", "run_task", "polis_emit_value", "polis_present",
		"#define SIG_in", "A_react();", "B_react();", "isr_in", "rr",
	} {
		if !strings.Contains(src, needle) {
			t.Errorf("generated C missing %q", needle)
		}
	}
	_ = in
	_ = out
	_ = a
	_ = b

	cfg.Policy = StaticPriority
	cfg.Priority = map[*cfsm.CFSM]int{a: 2, b: 1}
	src2 := GenerateC(n, cfg, sigID)
	if !strings.Contains(src2, "prio 2") {
		t.Error("priority scheduler not rendered")
	}
	cfg.Deliver = map[*cfsm.Signal]Delivery{in: Polling}
	src3 := GenerateC(n, cfg, sigID)
	if !strings.Contains(src3, "poll_routine") {
		t.Error("poll routine not rendered")
	}
}

func TestConfigValidate(t *testing.T) {
	n, in, _, _, _ := chainNet()
	cfg := DefaultConfig()
	cfg.Preemptive = true
	if err := cfg.Validate(n); err == nil {
		t.Error("preemptive round-robin must be rejected")
	}
	cfg = DefaultConfig()
	cfg.InISR = map[*cfsm.Signal]bool{in: true}
	cfg.Deliver = map[*cfsm.Signal]Delivery{in: Polling}
	if err := cfg.Validate(n); err == nil {
		t.Error("InISR with polling delivery must be rejected")
	}
}

func TestTaskChaining(t *testing.T) {
	run := func(chain bool) (int64, int64) {
		n, in, out, a, b := chainNet()
		cfg := DefaultConfig()
		if chain {
			cfg.Chains = [][]*cfsm.CFSM{{a, b}}
		}
		sys, err := NewSystem(n, cfg, mkBehavioral(100))
		if err != nil {
			t.Fatal(err)
		}
		sys.EmitEnv(in, 0)
		if err := sys.Advance(100000); err != nil {
			t.Fatal(err)
		}
		e, ok := findEmission(sys.Trace, out)
		if !ok {
			t.Fatal("no output")
		}
		return e.Time, sys.ScheduleCalls
	}
	latPlain, schedPlain := run(false)
	latChain, schedChain := run(true)
	if schedChain >= schedPlain {
		t.Errorf("chaining must cut scheduler calls: %d vs %d", schedChain, schedPlain)
	}
	if latChain >= latPlain {
		t.Errorf("chaining must cut latency: %d vs %d", latChain, latPlain)
	}
	// Exactly one scheduling overhead removed.
	cfg := DefaultConfig()
	if latPlain-latChain != cfg.ScheduleOverhead {
		t.Errorf("latency gain %d, want one scheduling overhead %d",
			latPlain-latChain, cfg.ScheduleOverhead)
	}
}

func TestChainValidate(t *testing.T) {
	n, _, _, a, b := chainNet()
	cfg := DefaultConfig()
	cfg.Chains = [][]*cfsm.CFSM{{a, b}, {b}}
	if err := cfg.Validate(n); err == nil {
		t.Error("machine in two chains must be rejected")
	}
	cfg = DefaultConfig()
	cfg.HW = map[*cfsm.CFSM]bool{a: true}
	cfg.Chains = [][]*cfsm.CFSM{{a, b}}
	if err := cfg.Validate(n); err == nil {
		t.Error("chained hardware machine must be rejected")
	}
}

func TestGenerateCChains(t *testing.T) {
	n, _, _, a, b := chainNet()
	cfg := DefaultConfig()
	cfg.Chains = [][]*cfsm.CFSM{{a, b}}
	sigID := map[*cfsm.Signal]int{}
	for i, s := range n.Signals {
		sigID[s] = i
	}
	src := GenerateC(n, cfg, sigID)
	if !strings.Contains(src, "chained: A -> B") {
		t.Errorf("chained dispatch missing from generated C:\n%s", src)
	}
}

func TestUtilizationIdle(t *testing.T) {
	n, _, _, _, _ := chainNet()
	sys, err := NewSystem(n, DefaultConfig(), mkBehavioral(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(10000); err != nil {
		t.Fatal(err)
	}
	if u := sys.Utilization(); u != 0 {
		t.Errorf("idle system utilization %f", u)
	}
}

func TestAdvanceBackwardsRejected(t *testing.T) {
	n, _, _, _, _ := chainNet()
	sys, err := NewSystem(n, DefaultConfig(), mkBehavioral(100))
	if err != nil {
		t.Fatal(err)
	}
	_ = sys.Advance(1000)
	if err := sys.Advance(500); err == nil {
		t.Error("time going backwards must be rejected")
	}
}
