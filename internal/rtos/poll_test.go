package rtos

import (
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
)

// pollFanNet builds one valued environment signal read by two software
// machines, each latching the received value into a state variable.
func pollFanNet() (*cfsm.Network, *cfsm.Signal, *cfsm.StateVar, *cfsm.StateVar) {
	n := cfsm.NewNetwork("pollfan")
	in := n.NewSignal("in", false)
	mk := func(name string) (*cfsm.CFSM, *cfsm.StateVar) {
		m := cfsm.New(name)
		m.AttachInput(in)
		sv := m.AddState("seen_"+name, 256, 0)
		m.AddTransition([]cfsm.Cond{cfsm.On(m.Present(in), 1)},
			m.Assign(sv, expr.V("?in")))
		if err := n.Add(m); err != nil {
			panic(err)
		}
		return m, sv
	}
	_, sv1 := mk("R1")
	_, sv2 := mk("R2")
	return n, in, sv1, sv2
}

// TestPollPortOverwriteAccounting pins the one-place poll port
// semantics under batched delivery: the port latch runs once per
// software reader, so an emission to a k-reader polled signal latches k
// times, and every latch onto an occupied port counts one PollDropped.
// Two back-to-back emissions within one poll period must count
// 1 (second latch of the first emission) + 2 (both latches of the
// second) = 3 drops, and both readers must see only the latest value.
func TestPollPortOverwriteAccounting(t *testing.T) {
	n, in, sv1, sv2 := pollFanNet()
	cfg := DefaultConfig()
	cfg.Deliver[in] = Polling
	cfg.PollPeriod = 100
	sys, err := NewSystem(n, cfg, mkBehavioral(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(1); err != nil {
		t.Fatal(err)
	}
	if err := sys.EmitEnv(in, 5); err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(2); err != nil {
		t.Fatal(err)
	}
	if err := sys.EmitEnv(in, 6); err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(5000); err != nil {
		t.Fatal(err)
	}
	if sys.PollDropped != 3 {
		t.Errorf("PollDropped = %d, want 3", sys.PollDropped)
	}
	// The poll routine delivered once per reader, after the overwrite.
	polls := 0
	for _, e := range sys.Trace {
		if e.From == "poll" {
			polls++
			if e.Value != 6 {
				t.Errorf("poll delivery carried value %d, want 6 (latest)", e.Value)
			}
		}
	}
	if polls != 2 {
		t.Errorf("%d poll deliveries, want 2 (one per reader)", polls)
	}
	for i, task := range sys.Tasks {
		if task.Executions != 1 || task.Fired != 1 || task.Lost != 0 {
			t.Errorf("task %d exec/fired/lost = %d/%d/%d, want 1/1/0",
				i, task.Executions, task.Fired, task.Lost)
		}
	}
	if got := sys.Tasks[0].State(sv1); got != 6 {
		t.Errorf("R1 latched %d, want 6", got)
	}
	if got := sys.Tasks[1].State(sv2); got != 6 {
		t.Errorf("R2 latched %d, want 6", got)
	}
}

// TestPollTicksWithoutReaders pins a preserved quirk: marking any
// signal for polling turns the poll routine on, and its ticks cost
// PollOverhead busy cycles even when no port is ever latched.
func TestPollTicksWithoutReaders(t *testing.T) {
	n := cfsm.NewNetwork("pollidle")
	orphan := n.NewSignal("orphan", true)
	in, _ := func() (*cfsm.Signal, *cfsm.Signal) {
		in := n.NewSignal("in", true)
		out := n.NewSignal("out", true)
		m := cfsm.New("M")
		m.AttachInput(in)
		m.AttachOutput(out)
		m.AddTransition([]cfsm.Cond{cfsm.On(m.Present(in), 1)}, m.Emit(out))
		if err := n.Add(m); err != nil {
			panic(err)
		}
		return in, out
	}()
	_ = in
	cfg := DefaultConfig()
	cfg.Deliver[orphan] = Polling // no machine reads it
	cfg.PollPeriod = 1000
	sys, err := NewSystem(n, cfg, mkBehavioral(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(10_000); err != nil {
		t.Fatal(err)
	}
	if sys.Polls != 10 {
		t.Errorf("Polls = %d, want 10", sys.Polls)
	}
	if want := 10 * cfg.PollOverhead; sys.BusyCycles != want {
		t.Errorf("BusyCycles = %d, want %d", sys.BusyCycles, want)
	}
}
