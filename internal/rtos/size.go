package rtos

import (
	"polis/internal/cfsm"
	"polis/internal/vm"
)

// SizeReport breaks down the memory footprint of one generated RTOS
// instance on a target.
type SizeReport struct {
	CodeBytes int64 // scheduler + event routines + ISRs + poll routine
	DataBytes int64 // flags, value buffers, task table
}

// SizeEstimate models the ROM/RAM cost of the generated RTOS: because
// the communication structure is fixed at generation time (Section
// IV-E), the cost is a small base plus per-task and per-connection
// increments, all scaled by the target's instruction sizes. The
// constants are expressed in instruction counts so the model tracks
// the target profile.
func SizeEstimate(prof *vm.Profile, n *cfsm.Network, cfg Config) SizeReport {
	instr := int64(prof.Size[vm.LD]) // representative instruction size
	branch := int64(prof.Size[vm.BRZ])
	var r SizeReport

	swTasks := int64(0)
	connections := int64(0)
	hwSignals := int64(0)
	pollSignals := int64(0)
	isrBodies := int64(0)
	for _, m := range n.Machines {
		if cfg.HW[m] {
			continue
		}
		swTasks++
		connections += int64(len(m.Inputs))
	}
	for _, sig := range n.Signals {
		readers := n.Readers(sig)
		swRead := false
		for _, m := range readers {
			if !cfg.HW[m] {
				swRead = true
			}
		}
		fromHW := len(n.Writers(sig)) == 0 // environment
		for _, w := range n.Writers(sig) {
			if cfg.HW[w] {
				fromHW = true
			}
		}
		if fromHW && swRead {
			hwSignals++
			if d, ok := cfg.Deliver[sig]; ok && d == Polling {
				pollSignals++
			} else {
				isrBodies++
			}
		}
	}

	// Scheduler core: dispatch loop + policy logic.
	core := int64(24) * instr
	if cfg.Policy == StaticPriority {
		core += 10 * instr
		if cfg.Preemptive {
			core += 16 * instr
		}
	}
	// Per-task dispatch entry and enable bookkeeping.
	core += swTasks * (6*instr + branch)
	// Event emission/detection: one flag-set stub per connection
	// (the fixed sensitivity structure lets the generator inline it).
	core += connections * (3 * instr)
	// ISRs and the poll routine.
	core += isrBodies * (8 * instr)
	if pollSignals > 0 {
		core += 12*instr + pollSignals*(4*instr+branch)
	}
	r.CodeBytes = core

	// RAM: per-connection flag + value buffer, per-task control block.
	r.DataBytes = connections*int64(1+prof.IntBytes) + swTasks*int64(2*prof.IntBytes)
	return r
}

// CommercialSizeEstimate models a generic commercial RTOS kernel for
// the Section IV-E comparison: dynamic task and event management make
// its footprint a large constant plus bigger per-object costs,
// independent of the network's fixed structure.
func CommercialSizeEstimate(prof *vm.Profile, n *cfsm.Network, cfg Config) SizeReport {
	instr := int64(prof.Size[vm.LD])
	swTasks := int64(0)
	connections := int64(0)
	for _, m := range n.Machines {
		if cfg.HW[m] {
			continue
		}
		swTasks++
		connections += int64(len(m.Inputs))
	}
	return SizeReport{
		// Kernel core (scheduler, queues, timers, semaphores, event
		// flag service) plus generic per-task setup code.
		CodeBytes: 2200*instr + swTasks*(40*instr),
		// TCBs, stacks bookkeeping, event control blocks.
		DataBytes: swTasks*int64(32*prof.IntBytes) + connections*int64(4*prof.IntBytes) + 256,
	}
}

// SchedulabilityReport carries the rate-monotonic analysis results the
// paper's flow feeds back to the scheduling step.
type SchedulabilityReport struct {
	Utilization float64
	// LLBound is the Liu & Layland utilisation bound n(2^(1/n)-1).
	LLBound float64
	// ByBound is true when the utilisation test alone proves the
	// task set schedulable under rate-monotonic priorities.
	ByBound bool
	// ResponseTimes holds the exact worst-case response time per
	// task (response-time analysis), valid for preemptive static
	// priorities; Schedulable reports whether all meet deadlines.
	ResponseTimes []int64
	Schedulable   bool
}

// TaskSpec describes one periodic software task for schedulability
// analysis: worst-case execution time (from the estimator), period and
// deadline in cycles.
type TaskSpec struct {
	Name     string
	WCET     int64
	Period   int64
	Deadline int64 // 0 means deadline = period
}

// Schedulability runs the Liu & Layland utilisation test and exact
// response-time analysis under rate-monotonic priority assignment
// (shorter period = higher priority), adding the RTOS scheduling
// overhead to each task's cost.
func Schedulability(specs []TaskSpec, scheduleOverhead int64) SchedulabilityReport {
	var rep SchedulabilityReport
	n := len(specs)
	if n == 0 {
		rep.Schedulable = true
		rep.ByBound = true
		return rep
	}
	ts := make([]TaskSpec, n)
	copy(ts, specs)
	for i := range ts {
		ts[i].WCET += scheduleOverhead
		if ts[i].Deadline == 0 {
			ts[i].Deadline = ts[i].Period
		}
	}
	// Rate-monotonic order.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && ts[j].Period < ts[j-1].Period; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	u := 0.0
	for _, t := range ts {
		u += float64(t.WCET) / float64(t.Period)
	}
	rep.Utilization = u
	rep.LLBound = float64(n) * (pow2inv(n) - 1)
	rep.ByBound = u <= rep.LLBound

	// Response-time analysis.
	rep.ResponseTimes = make([]int64, n)
	rep.Schedulable = true
	for i := range ts {
		r := ts[i].WCET
		for iter := 0; iter < 1000; iter++ {
			next := ts[i].WCET
			for j := 0; j < i; j++ {
				next += ceilDiv(r, ts[j].Period) * ts[j].WCET
			}
			if next == r {
				break
			}
			r = next
			if r > ts[i].Deadline {
				break
			}
		}
		rep.ResponseTimes[i] = r
		if r > ts[i].Deadline {
			rep.Schedulable = false
		}
	}
	return rep
}

// pow2inv computes 2^(1/n).
func pow2inv(n int) float64 {
	// Newton iteration for x = 2^(1/n): solve x^n = 2.
	x := 1.1
	for i := 0; i < 60; i++ {
		xn := 1.0
		for k := 0; k < n; k++ {
			xn *= x
		}
		// f(x) = x^n - 2; f'(x) = n x^(n-1)
		fp := float64(n) * xn / x
		x -= (xn - 2) / fp
	}
	return x
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}
