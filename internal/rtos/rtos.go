// Package rtos implements the automatically generated real-time
// operating system of Section IV: scheduling of software CFSMs,
// event emission/detection through private presence flags and
// one-place value buffers, transfer of events between hardware and
// software partitions (polling or interrupts), and the consumption
// atomicity rule — once a CFSM starts reading its input flags, no new
// flags become visible until it finishes, but events arriving in that
// window are remembered for the next execution.
//
// The package provides an executable cycle-level model of the
// generated RTOS (used by internal/sim for co-simulation), a ROM/RAM
// size model for it, and a C source generator for the artefact a
// target build would compile.
//
// The runtime model is throughput-oriented: task buffers are dense
// arrays indexed by slots the cfsm.Layout resolves once at task
// construction, and a steady-state reaction allocates nothing. The
// reference semantics (map-based, event-at-a-time) is frozen in
// internal/sim/internal/refsim and the differential tests there pin
// this implementation to it.
package rtos

import (
	"fmt"

	"polis/internal/cfsm"
)

// Policy selects the scheduling discipline.
type Policy int

// Scheduling policies offered by the generator (Section IV-A).
const (
	RoundRobin Policy = iota
	StaticPriority
)

func (p Policy) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "static-priority"
}

// Delivery selects how events produced by the hardware partition reach
// software CFSMs (Section IV-C).
type Delivery int

// Delivery mechanisms.
const (
	Interrupt Delivery = iota
	Polling
)

// Config describes one generated RTOS instance.
type Config struct {
	Policy     Policy
	Preemptive bool
	// Priority gives each software machine its static priority
	// (higher runs first); unset machines default to 0.
	Priority map[*cfsm.CFSM]int
	// HW marks machines implemented in hardware: they react with a
	// fixed short delay outside the CPU.
	HW map[*cfsm.CFSM]bool
	// HWDelay is the reaction delay of hardware machines in cycles.
	HWDelay int64
	// Deliver selects polling or interrupts per environment/hardware
	// signal; the default is Interrupt, as in the paper.
	Deliver map[*cfsm.Signal]Delivery
	// PollPeriod is the polling routine's period in cycles.
	PollPeriod int64
	// InISR marks events whose sensitive software CFSMs execute
	// inside the interrupt service routine itself, giving the most
	// critical tasks immediate attention.
	InISR map[*cfsm.Signal]bool
	// Chains lists orderings of software machines whose executions
	// the RTOS chains into a single task (Section IV-A): when a
	// machine in a chain completes and its successor was enabled by
	// the completion's emissions (or was already enabled), the
	// successor runs immediately without a scheduler decision,
	// removing the scheduling overhead between them. A machine may
	// appear in at most one chain.
	Chains [][]*cfsm.CFSM

	// Overheads in cycles, normally taken from SizeTiming for the
	// target profile.
	ScheduleOverhead int64 // one scheduler decision
	EmitOverhead     int64 // one event emission (flag fan-out)
	ISROverhead      int64 // interrupt entry/exit
	PollOverhead     int64 // one poll routine execution

	// Mutant injects an intentionally wrong event-buffer semantics
	// into every task. It exists solely so the netfuzz harness can
	// prove it detects semantic bugs (a mutant self-check); production
	// configurations leave it at MutantNone.
	Mutant Mutant
}

// Mutant enumerates the known-bad semantics available for harness
// self-validation. Each one is a minimal, realistic slip in the
// one-place-buffer bookkeeping of Section II.
type Mutant int

// Mutants.
const (
	// MutantNone is the correct semantics.
	MutantNone Mutant = iota
	// MutantLostUndercount forgets to count an overwritten event, so
	// event loss becomes silent.
	MutantLostUndercount
	// MutantStaleOverwrite keeps the old buffered value when a new
	// event overwrites a one-place buffer (the overwrite updates the
	// flag but not the value — a classic off-by-one in the buffer
	// update sequence).
	MutantStaleOverwrite
	// MutantConsumeUnfired clears the input flags even when no
	// transition fired, violating the event-preservation rule of
	// Section IV-D.
	MutantConsumeUnfired
)

// DefaultConfig returns a round-robin non-preemptive configuration
// with interrupt delivery — the setup of the paper's shock-absorber
// redesign.
func DefaultConfig() Config {
	return Config{
		Policy:           RoundRobin,
		Priority:         map[*cfsm.CFSM]int{},
		HW:               map[*cfsm.CFSM]bool{},
		HWDelay:          2,
		Deliver:          map[*cfsm.Signal]Delivery{},
		PollPeriod:       2000,
		InISR:            map[*cfsm.Signal]bool{},
		ScheduleOverhead: 18,
		EmitOverhead:     9,
		ISROverhead:      24,
		PollOverhead:     14,
	}
}

// Task is the runtime record of one software CFSM: its private input
// flags and value buffers, the frozen snapshot while it executes, and
// the events remembered for the next execution (Section IV-D). All
// buffers are dense arrays indexed by the slots of the machine's
// cfsm.Layout; begin/post/finish allocate nothing.
type Task struct {
	M        *cfsm.CFSM
	Priority int

	// Lay resolves this machine's signals and state variables to the
	// dense slot indices all buffers below are addressed with.
	Lay *cfsm.Layout

	// flags/values are the visible one-place input buffers, by input
	// slot.
	flags  []bool
	values []int64
	// pendFlags/pendValues buffer events arriving while the task
	// executes (the freeze window).
	pendFlags  []bool
	pendValues []int64

	running bool
	enabled bool // set by event arrival, cleared when a run starts

	// react executes one reaction on the frozen dense snapshot,
	// writing the result into out. A reaction error — e.g. a
	// virtual-machine fault in co-simulation — aborts the whole system
	// run with the task name attached; it never panics.
	react func(snap *cfsm.DenseSnapshot, out *cfsm.DenseReaction) error
	// cost returns the execution time in cycles of the reaction just
	// produced by react.
	cost func() int64

	// mutant is the injected bad semantics (harness self-checks only),
	// copied from the system config.
	mutant Mutant

	// state is the committed state, by state slot.
	state []int64
	// frozen is the reused snapshot buffer of the in-flight execution;
	// out is the reused reaction buffer it produced. Both stay valid
	// until finish because a task has at most one in-flight execution.
	frozen *cfsm.DenseSnapshot
	out    cfsm.DenseReaction

	// chainNext is the chain successor, resolved by NewSystem.
	chainNext *Task

	// Stats
	Executions int64
	Fired      int64
	Lost       int64 // overwritten events (one-place buffers)
}

// Enabled reports whether the task must be scheduled: an event has
// arrived since its last execution started. A task whose execution
// fired no transition keeps its unconsumed flags (Section IV-D) but is
// not re-scheduled until a new event occurs — otherwise it would spin
// on the preserved events.
func (t *Task) Enabled() bool {
	return t.enabled && !t.running
}

// post delivers an event to the task's buffers, honouring the freeze
// window and counting one-place buffer overwrites. slot is the input
// slot of the signal in the task's layout.
func (t *Task) post(slot int, v int64) {
	if t.running {
		if t.pendFlags[slot] && t.mutant != MutantLostUndercount {
			t.Lost++
		}
		if t.pendFlags[slot] && t.mutant == MutantStaleOverwrite {
			return // flag already set; stale value kept
		}
		t.pendFlags[slot] = true
		t.pendValues[slot] = v
		return
	}
	if t.flags[slot] {
		if t.mutant != MutantLostUndercount {
			t.Lost++
		}
		if t.mutant == MutantStaleOverwrite {
			t.enabled = true
			return // flag already set; stale value kept
		}
	}
	t.flags[slot] = true
	t.values[slot] = v
	t.enabled = true
}

// begin freezes the input snapshot into the task's reused buffer and
// marks the task running. Values of absent signals read as zero,
// matching the map-based snapshot that held no entry for them.
func (t *Task) begin() *cfsm.DenseSnapshot {
	d := t.frozen
	for i, p := range t.flags {
		d.Present[i] = p
		if p {
			d.Values[i] = t.values[i]
		} else {
			d.Values[i] = 0
		}
	}
	copy(d.State, t.state)
	t.running = true
	t.enabled = false
	return d
}

// finish completes an execution: consumed flags are cleared only when
// a transition fired, pending events become visible, and the next
// state is committed.
func (t *Task) finish(fired bool, nextState []int64) {
	t.Executions++
	if fired {
		t.Fired++
		for i, p := range t.frozen.Present {
			if p {
				t.flags[i] = false
			}
		}
		copy(t.state, nextState)
	} else if t.mutant == MutantConsumeUnfired {
		for i, p := range t.frozen.Present {
			if p {
				t.flags[i] = false
			}
		}
	}
	for i, p := range t.pendFlags {
		if !p {
			continue
		}
		if t.flags[i] && t.mutant != MutantLostUndercount {
			t.Lost++
		}
		if t.flags[i] && t.mutant == MutantStaleOverwrite {
			t.enabled = true
		} else {
			t.flags[i] = true
			t.values[i] = t.pendValues[i]
			t.enabled = true
		}
		t.pendFlags[i] = false
	}
	t.running = false
}

// Infallible adapts a pure reaction function — e.g. the reference
// interpreter (*cfsm.CFSM).React — to the error-returning callback
// NewTask expects.
func Infallible(f func(cfsm.Snapshot) cfsm.Reaction) func(cfsm.Snapshot) (cfsm.Reaction, error) {
	return func(snap cfsm.Snapshot) (cfsm.Reaction, error) { return f(snap), nil }
}

// NewDenseTask builds the runtime record for a software CFSM with a
// dense reaction function and cost model. lay may be nil, in which
// case a fresh layout is built for the machine.
func NewDenseTask(m *cfsm.CFSM, lay *cfsm.Layout,
	react func(snap *cfsm.DenseSnapshot, out *cfsm.DenseReaction) error,
	cost func() int64) *Task {
	if lay == nil {
		lay = cfsm.NewLayout(m)
	}
	ni, ns := len(lay.Ins), len(lay.States)
	t := &Task{
		M:          m,
		Lay:        lay,
		flags:      make([]bool, ni),
		values:     make([]int64, ni),
		pendFlags:  make([]bool, ni),
		pendValues: make([]int64, ni),
		state:      make([]int64, ns),
		react:      react,
		cost:       cost,
		frozen:     lay.NewDense(),
	}
	for i, sv := range lay.States {
		t.state[i] = sv.Init
	}
	t.out.NextState = make([]int64, 0, ns)
	return t
}

// NewBehavioralTask builds a task that reacts with the dense reference
// interpreter (allocation-free) and a fixed cost model.
func NewBehavioralTask(m *cfsm.CFSM, cost func() int64) *Task {
	lay := cfsm.NewLayout(m)
	react := func(snap *cfsm.DenseSnapshot, out *cfsm.DenseReaction) error {
		lay.ReactInto(snap, out)
		return nil
	}
	return NewDenseTask(m, lay, react, cost)
}

// NewTask builds the runtime record for a software CFSM from a
// map-based reaction function and cost model. It adapts the legacy
// callback signature onto the dense runtime by materialising a map
// snapshot per reaction, so it allocates; hot paths should use
// NewDenseTask or NewBehavioralTask instead.
func NewTask(m *cfsm.CFSM, react func(cfsm.Snapshot) (cfsm.Reaction, error),
	cost func(cfsm.Snapshot) int64) *Task {
	lay := cfsm.NewLayout(m)
	var lastSnap cfsm.Snapshot
	dreact := func(snap *cfsm.DenseSnapshot, out *cfsm.DenseReaction) error {
		lastSnap = snap.Snapshot()
		r, err := react(lastSnap)
		if err != nil {
			return err
		}
		out.Fired = r.Fired
		out.Emitted = append(out.Emitted[:0], r.Emitted...)
		out.NextState = out.NextState[:0]
		for _, sv := range lay.States {
			out.NextState = append(out.NextState, r.NextState[sv])
		}
		return nil
	}
	dcost := func() int64 { return cost(lastSnap) }
	return NewDenseTask(m, lay, dreact, dcost)
}

// State exposes the task's committed state (for assertions and
// latency checks in tests and experiments).
func (t *Task) State(sv *cfsm.StateVar) int64 {
	slot := t.Lay.StateSlot(sv)
	if slot < 0 {
		return 0
	}
	return t.state[slot]
}

// Validate checks a configuration against a network.
func (c *Config) Validate(n *cfsm.Network) error {
	if c.Preemptive && c.Policy == RoundRobin {
		return fmt.Errorf("rtos: preemption requires static priorities")
	}
	for s := range c.InISR {
		if d, ok := c.Deliver[s]; ok && d != Interrupt {
			return fmt.Errorf("rtos: signal %s marked InISR but delivered by polling", s.Name)
		}
	}
	seen := make(map[*cfsm.CFSM]bool)
	for _, chain := range c.Chains {
		for _, m := range chain {
			if c.HW[m] {
				return fmt.Errorf("rtos: chained machine %s is in the hardware partition", m.Name)
			}
			if seen[m] {
				return fmt.Errorf("rtos: machine %s appears in more than one chain", m.Name)
			}
			seen[m] = true
		}
	}
	return nil
}
