// Package rtos implements the automatically generated real-time
// operating system of Section IV: scheduling of software CFSMs,
// event emission/detection through private presence flags and
// one-place value buffers, transfer of events between hardware and
// software partitions (polling or interrupts), and the consumption
// atomicity rule — once a CFSM starts reading its input flags, no new
// flags become visible until it finishes, but events arriving in that
// window are remembered for the next execution.
//
// The package provides an executable cycle-level model of the
// generated RTOS (used by internal/sim for co-simulation), a ROM/RAM
// size model for it, and a C source generator for the artefact a
// target build would compile.
package rtos

import (
	"fmt"

	"polis/internal/cfsm"
)

// Policy selects the scheduling discipline.
type Policy int

// Scheduling policies offered by the generator (Section IV-A).
const (
	RoundRobin Policy = iota
	StaticPriority
)

func (p Policy) String() string {
	if p == RoundRobin {
		return "round-robin"
	}
	return "static-priority"
}

// Delivery selects how events produced by the hardware partition reach
// software CFSMs (Section IV-C).
type Delivery int

// Delivery mechanisms.
const (
	Interrupt Delivery = iota
	Polling
)

// Config describes one generated RTOS instance.
type Config struct {
	Policy     Policy
	Preemptive bool
	// Priority gives each software machine its static priority
	// (higher runs first); unset machines default to 0.
	Priority map[*cfsm.CFSM]int
	// HW marks machines implemented in hardware: they react with a
	// fixed short delay outside the CPU.
	HW map[*cfsm.CFSM]bool
	// HWDelay is the reaction delay of hardware machines in cycles.
	HWDelay int64
	// Deliver selects polling or interrupts per environment/hardware
	// signal; the default is Interrupt, as in the paper.
	Deliver map[*cfsm.Signal]Delivery
	// PollPeriod is the polling routine's period in cycles.
	PollPeriod int64
	// InISR marks events whose sensitive software CFSMs execute
	// inside the interrupt service routine itself, giving the most
	// critical tasks immediate attention.
	InISR map[*cfsm.Signal]bool
	// Chains lists orderings of software machines whose executions
	// the RTOS chains into a single task (Section IV-A): when a
	// machine in a chain completes and its successor was enabled by
	// the completion's emissions (or was already enabled), the
	// successor runs immediately without a scheduler decision,
	// removing the scheduling overhead between them. A machine may
	// appear in at most one chain.
	Chains [][]*cfsm.CFSM

	// Overheads in cycles, normally taken from SizeTiming for the
	// target profile.
	ScheduleOverhead int64 // one scheduler decision
	EmitOverhead     int64 // one event emission (flag fan-out)
	ISROverhead      int64 // interrupt entry/exit
	PollOverhead     int64 // one poll routine execution

	// Mutant injects an intentionally wrong event-buffer semantics
	// into every task. It exists solely so the netfuzz harness can
	// prove it detects semantic bugs (a mutant self-check); production
	// configurations leave it at MutantNone.
	Mutant Mutant
}

// Mutant enumerates the known-bad semantics available for harness
// self-validation. Each one is a minimal, realistic slip in the
// one-place-buffer bookkeeping of Section II.
type Mutant int

// Mutants.
const (
	// MutantNone is the correct semantics.
	MutantNone Mutant = iota
	// MutantLostUndercount forgets to count an overwritten event, so
	// event loss becomes silent.
	MutantLostUndercount
	// MutantStaleOverwrite keeps the old buffered value when a new
	// event overwrites a one-place buffer (the overwrite updates the
	// flag but not the value — a classic off-by-one in the buffer
	// update sequence).
	MutantStaleOverwrite
	// MutantConsumeUnfired clears the input flags even when no
	// transition fired, violating the event-preservation rule of
	// Section IV-D.
	MutantConsumeUnfired
)

// DefaultConfig returns a round-robin non-preemptive configuration
// with interrupt delivery — the setup of the paper's shock-absorber
// redesign.
func DefaultConfig() Config {
	return Config{
		Policy:           RoundRobin,
		Priority:         map[*cfsm.CFSM]int{},
		HW:               map[*cfsm.CFSM]bool{},
		HWDelay:          2,
		Deliver:          map[*cfsm.Signal]Delivery{},
		PollPeriod:       2000,
		InISR:            map[*cfsm.Signal]bool{},
		ScheduleOverhead: 18,
		EmitOverhead:     9,
		ISROverhead:      24,
		PollOverhead:     14,
	}
}

// Task is the runtime record of one software CFSM: its private input
// flags and value buffers, the frozen snapshot while it executes, and
// the events remembered for the next execution (Section IV-D).
type Task struct {
	M        *cfsm.CFSM
	Priority int

	// flags/values are the visible input buffers.
	flags  map[*cfsm.Signal]bool
	values map[*cfsm.Signal]int64
	// pendFlags/pendValues buffer events arriving while the task
	// executes (the freeze window).
	pendFlags  map[*cfsm.Signal]bool
	pendValues map[*cfsm.Signal]int64

	running   bool
	enabled   bool  // set by event arrival, cleared when a run starts
	remaining int64 // cycles left in the current execution
	// react is called when an execution completes, with the frozen
	// snapshot; it returns the emissions and whether any transition
	// fired (events are consumed only if it did). A reaction error —
	// e.g. a virtual-machine fault in co-simulation — aborts the
	// whole system run with the task name attached; it never panics.
	react func(snap cfsm.Snapshot) (cfsm.Reaction, error)
	// cost returns the execution time in cycles for a snapshot.
	cost func(snap cfsm.Snapshot) int64

	// mutant is the injected bad semantics (harness self-checks only),
	// copied from the system config.
	mutant Mutant

	state map[*cfsm.StateVar]int64
	// frozen snapshot for the in-flight execution
	frozen cfsm.Snapshot

	// Stats
	Executions int64
	Fired      int64
	Lost       int64 // overwritten events (one-place buffers)
}

// Enabled reports whether the task must be scheduled: an event has
// arrived since its last execution started. A task whose execution
// fired no transition keeps its unconsumed flags (Section IV-D) but is
// not re-scheduled until a new event occurs — otherwise it would spin
// on the preserved events.
func (t *Task) Enabled() bool {
	return t.enabled && !t.running
}

// post delivers an event to the task's buffers, honouring the freeze
// window and counting one-place buffer overwrites.
func (t *Task) post(s *cfsm.Signal, v int64) {
	if t.running {
		if t.pendFlags[s] && t.mutant != MutantLostUndercount {
			t.Lost++
		}
		if t.pendFlags[s] && t.mutant == MutantStaleOverwrite {
			return // flag already set; stale value kept
		}
		t.pendFlags[s] = true
		t.pendValues[s] = v
		return
	}
	if t.flags[s] {
		if t.mutant != MutantLostUndercount {
			t.Lost++
		}
		if t.mutant == MutantStaleOverwrite {
			t.enabled = true
			return // flag already set; stale value kept
		}
	}
	t.flags[s] = true
	t.values[s] = v
	t.enabled = true
}

// begin freezes the input snapshot and marks the task running.
func (t *Task) begin() cfsm.Snapshot {
	snap := cfsm.Snapshot{
		Present: make(map[*cfsm.Signal]bool, len(t.flags)),
		Values:  make(map[*cfsm.Signal]int64, len(t.values)),
		State:   t.state,
	}
	for s, p := range t.flags {
		if p {
			snap.Present[s] = true
			snap.Values[s] = t.values[s]
		}
	}
	t.running = true
	t.enabled = false
	t.frozen = snap
	return snap
}

// finish completes an execution: consumed flags are cleared only when
// a transition fired, pending events become visible, and the next
// state is committed.
func (t *Task) finish(r cfsm.Reaction) {
	t.Executions++
	if r.Fired {
		t.Fired++
		for s := range t.frozen.Present {
			t.flags[s] = false
		}
		t.state = r.NextState
	} else if t.mutant == MutantConsumeUnfired {
		for s := range t.frozen.Present {
			t.flags[s] = false
		}
	}
	for s, p := range t.pendFlags {
		if p {
			if t.flags[s] && t.mutant != MutantLostUndercount {
				t.Lost++
			}
			if t.flags[s] && t.mutant == MutantStaleOverwrite {
				t.enabled = true
			} else {
				t.flags[s] = true
				t.values[s] = t.pendValues[s]
				t.enabled = true
			}
		}
		delete(t.pendFlags, s)
		delete(t.pendValues, s)
	}
	t.running = false
}

// Infallible adapts a pure reaction function — e.g. the reference
// interpreter (*cfsm.CFSM).React — to the error-returning callback
// NewTask expects.
func Infallible(f func(cfsm.Snapshot) cfsm.Reaction) func(cfsm.Snapshot) (cfsm.Reaction, error) {
	return func(snap cfsm.Snapshot) (cfsm.Reaction, error) { return f(snap), nil }
}

// NewTask builds the runtime record for a software CFSM with the given
// reaction function and cost model.
func NewTask(m *cfsm.CFSM, react func(cfsm.Snapshot) (cfsm.Reaction, error),
	cost func(cfsm.Snapshot) int64) *Task {
	st := make(map[*cfsm.StateVar]int64, len(m.States))
	for _, sv := range m.States {
		st[sv] = sv.Init
	}
	return &Task{
		M:          m,
		flags:      make(map[*cfsm.Signal]bool),
		values:     make(map[*cfsm.Signal]int64),
		pendFlags:  make(map[*cfsm.Signal]bool),
		pendValues: make(map[*cfsm.Signal]int64),
		react:      react,
		cost:       cost,
		state:      st,
	}
}

// State exposes the task's committed state (for assertions and
// latency checks in tests and experiments).
func (t *Task) State(sv *cfsm.StateVar) int64 { return t.state[sv] }

// Validate checks a configuration against a network.
func (c *Config) Validate(n *cfsm.Network) error {
	if c.Preemptive && c.Policy == RoundRobin {
		return fmt.Errorf("rtos: preemption requires static priorities")
	}
	for s := range c.InISR {
		if d, ok := c.Deliver[s]; ok && d != Interrupt {
			return fmt.Errorf("rtos: signal %s marked InISR but delivered by polling", s.Name)
		}
	}
	seen := make(map[*cfsm.CFSM]bool)
	for _, chain := range c.Chains {
		for _, m := range chain {
			if c.HW[m] {
				return fmt.Errorf("rtos: chained machine %s is in the hardware partition", m.Name)
			}
			if seen[m] {
				return fmt.Errorf("rtos: machine %s appears in more than one chain", m.Name)
			}
			seen[m] = true
		}
	}
	return nil
}
