package rtos

import (
	"fmt"
	"sort"
	"strings"

	"polis/internal/cfsm"
)

// GenerateC renders the C source of the configured RTOS instance: the
// signal id table, per-task flag words, the event emission/detection
// services the generated CFSM code calls, the ISRs or poll routine for
// hardware-produced events, and the scheduler main loop for the chosen
// policy. The structure is fixed at generation time — no dynamic task
// or event objects — which is where the size advantage over a
// commercial kernel comes from (Section IV-E).
func GenerateC(n *cfsm.Network, cfg Config, sigID map[*cfsm.Signal]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* RTOS generated for network %q: %s", n.Name, cfg.Policy)
	if cfg.Preemptive {
		b.WriteString(", preemptive")
	}
	b.WriteString(". */\n#include \"polis_rtos.h\"\n\n")

	sigs := make([]*cfsm.Signal, 0, len(sigID))
	for s := range sigID {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigID[sigs[i]] < sigID[sigs[j]] })
	for _, s := range sigs {
		fmt.Fprintf(&b, "#define SIG_%s %d\n", s.Name, sigID[s])
	}

	var sw []*cfsm.CFSM
	for _, m := range n.Machines {
		if !cfg.HW[m] {
			sw = append(sw, m)
		}
	}
	fmt.Fprintf(&b, "\n#define N_TASKS %d\n", len(sw))
	b.WriteString("static unsigned char enabled[N_TASKS];\n")
	for _, m := range sw {
		fmt.Fprintf(&b, "static unsigned char flags_%s[%d];\nstatic int values_%s[%d];\n",
			m.Name, len(m.Inputs), m.Name, len(m.Inputs))
	}
	b.WriteString("static unsigned char frozen_task = 0xff;\n")
	b.WriteString("static unsigned char pend_flags[N_TASKS][8];\nstatic int pend_values[N_TASKS][8];\n\n")

	// Emission fans out to the statically known sensitive tasks.
	b.WriteString("void polis_emit_value(int sig, int v)\n{\n  switch (sig) {\n")
	for _, s := range sigs {
		readers := n.Readers(s)
		if len(readers) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  case SIG_%s:\n", s.Name)
		for _, m := range readers {
			if cfg.HW[m] {
				fmt.Fprintf(&b, "    HW_PORT_WRITE(%s, v); /* to hw-CFSM %s */\n", s.Name, m.Name)
				continue
			}
			idx := inputIndex(m, s)
			ti := taskIndex(sw, m)
			fmt.Fprintf(&b, "    if (frozen_task == %d) { pend_flags[%d][%d] = 1; pend_values[%d][%d] = v; }\n",
				ti, ti, idx, ti, idx)
			fmt.Fprintf(&b, "    else { flags_%s[%d] = 1; values_%s[%d] = v; enabled[%d] = 1; }\n",
				m.Name, idx, m.Name, idx, ti)
		}
		b.WriteString("    break;\n")
	}
	b.WriteString("  default: break;\n  }\n}\n")
	b.WriteString("void polis_emit(int sig) { polis_emit_value(sig, 0); }\n\n")

	// Detection reads the caller's frozen flags.
	b.WriteString("int polis_present(int sig)\n{\n  switch (frozen_task) {\n")
	for ti, m := range sw {
		fmt.Fprintf(&b, "  case %d:\n    switch (sig) {\n", ti)
		for idx, in := range m.Inputs {
			fmt.Fprintf(&b, "    case SIG_%s: return flags_%s[%d];\n", in.Name, m.Name, idx)
		}
		b.WriteString("    default: return 0;\n    }\n")
	}
	b.WriteString("  default: return 0;\n  }\n}\n\n")
	b.WriteString("int polis_value(int sig)\n{\n  switch (frozen_task) {\n")
	for ti, m := range sw {
		fmt.Fprintf(&b, "  case %d:\n    switch (sig) {\n", ti)
		for idx, in := range m.Inputs {
			if in.Pure {
				continue
			}
			fmt.Fprintf(&b, "    case SIG_%s: return values_%s[%d];\n", in.Name, m.Name, idx)
		}
		b.WriteString("    default: return 0;\n    }\n")
	}
	b.WriteString("  default: return 0;\n  }\n}\n\n")

	// ISRs / poll routine for hardware-produced events.
	for _, s := range sigs {
		if len(n.Writers(s)) > 0 {
			continue // produced inside the software partition
		}
		if d, ok := cfg.Deliver[s]; ok && d == Polling {
			continue
		}
		fmt.Fprintf(&b, "void isr_%s(void)\n{\n  polis_emit_value(SIG_%s, HW_PORT_READ(%s));\n", s.Name, s.Name, s.Name)
		if cfg.InISR[s] {
			for _, m := range n.Readers(s) {
				if !cfg.HW[m] {
					fmt.Fprintf(&b, "  run_task(%d); /* critical: run %s inside the ISR */\n",
						taskIndex(sw, m), m.Name)
				}
			}
		}
		b.WriteString("}\n")
	}
	hasPoll := false
	for _, s := range sigs {
		if d, ok := cfg.Deliver[s]; ok && d == Polling && len(n.Writers(s)) == 0 {
			if !hasPoll {
				hasPoll = true
				b.WriteString("void poll_routine(void)\n{\n")
			}
			fmt.Fprintf(&b, "  if (HW_PORT_TEST(%s)) polis_emit_value(SIG_%s, HW_PORT_READ(%s));\n",
				s.Name, s.Name, s.Name)
		}
	}
	if hasPoll {
		b.WriteString("}\n")
	}

	// Task runner and scheduler loop. Chained successors run back to
	// back without returning to the scheduler (Section IV-A).
	chainNext := map[*cfsm.CFSM]*cfsm.CFSM{}
	for _, chain := range cfg.Chains {
		for i := 0; i+1 < len(chain); i++ {
			chainNext[chain[i]] = chain[i+1]
		}
	}
	b.WriteString("\nstatic void run_task(int t)\n{\n  frozen_task = t;\n  switch (t) {\n")
	for ti, m := range sw {
		fmt.Fprintf(&b, "  case %d: %s_react(); break;\n", ti, m.Name)
	}
	b.WriteString("  }\n  frozen_task = 0xff;\n  commit_pending(t);\n")
	for ti, m := range sw {
		if succ, ok := chainNext[m]; ok && !cfg.HW[succ] {
			si := taskIndex(sw, succ)
			fmt.Fprintf(&b, "  if (t == %d && enabled[%d]) run_task(%d); /* chained: %s -> %s */\n",
				ti, si, si, m.Name, succ.Name)
		}
	}
	b.WriteString("}\n\n")

	b.WriteString("void polis_scheduler(void)\n{\n  for (;;) {\n")
	switch cfg.Policy {
	case RoundRobin:
		b.WriteString("    static int rr = 0;\n    int i;\n")
		b.WriteString("    for (i = 0; i < N_TASKS; i++) {\n")
		b.WriteString("      int t = (rr + i) % N_TASKS;\n")
		b.WriteString("      if (enabled[t]) { rr = (t + 1) % N_TASKS; run_task(t); break; }\n")
		b.WriteString("    }\n")
	case StaticPriority:
		b.WriteString("    /* priorities, highest first: */\n")
		order := make([]int, len(sw))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			return cfg.Priority[sw[order[i]]] > cfg.Priority[sw[order[j]]]
		})
		for _, ti := range order {
			fmt.Fprintf(&b, "    if (enabled[%d]) { run_task(%d); continue; } /* %s (prio %d) */\n",
				ti, ti, sw[ti].Name, cfg.Priority[sw[ti]])
		}
	}
	b.WriteString("    IDLE();\n  }\n}\n")
	return b.String()
}

func inputIndex(m *cfsm.CFSM, s *cfsm.Signal) int {
	for i, in := range m.Inputs {
		if in == s {
			return i
		}
	}
	return -1
}

func taskIndex(sw []*cfsm.CFSM, m *cfsm.CFSM) int {
	for i, t := range sw {
		if t == m {
			return i
		}
	}
	return -1
}
