package rtos

import (
	"fmt"
	"sort"

	"polis/internal/cfsm"
)

// TraceEvent records one event occurrence during execution.
type TraceEvent struct {
	Time   int64
	Signal *cfsm.Signal
	Value  int64
	From   string // emitting machine, "env", or "isr"/"poll" for deliveries
}

// running is one in-flight software execution.
type running struct {
	task     *Task
	reaction cfsm.Reaction
	end      int64
	inISR    bool
}

// hwRun is one in-flight hardware reaction.
type hwRun struct {
	task     *Task
	reaction cfsm.Reaction
	end      int64
}

// System is the executable cycle-level model of one generated RTOS
// instance plus the CFSM network it serves. Software tasks contend for
// the single CPU under the configured policy; hardware machines react
// concurrently off-CPU after a fixed delay.
type System struct {
	N   *cfsm.Network
	Cfg Config

	Tasks  []*Task // software tasks, in network order
	taskOf map[*cfsm.CFSM]*Task
	hwOf   map[*cfsm.CFSM]*Task
	// chainNext maps a task to its chain successor (Section IV-A).
	chainNext map[*Task]*Task

	Now   int64
	Trace []TraceEvent

	current *running
	stack   []*running // preempted executions
	hwRuns  []*hwRun
	freeAt  int64 // CPU occupied by ISR/poll bookkeeping until here

	// Polling: events from hardware/environment latched at the I/O
	// port until the poll routine runs.
	pollPort   map[*cfsm.Signal]bool
	pollValue  map[*cfsm.Signal]int64
	nextPoll   int64
	hasPolling bool

	rr int // round-robin cursor

	// Stats
	ScheduleCalls int64
	Interrupts    int64
	Polls         int64
	BusyCycles    int64
	idleSince     int64
}

// NewSystem builds the runtime. makeTask supplies each software
// machine's reaction function and cost model (behavioural or
// VM-backed); hardware machines always react behaviourally.
func NewSystem(n *cfsm.Network, cfg Config,
	makeTask func(m *cfsm.CFSM) (*Task, error)) (*System, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	s := &System{
		N:         n,
		Cfg:       cfg,
		taskOf:    make(map[*cfsm.CFSM]*Task),
		hwOf:      make(map[*cfsm.CFSM]*Task),
		pollPort:  make(map[*cfsm.Signal]bool),
		pollValue: make(map[*cfsm.Signal]int64),
	}
	for _, m := range n.Machines {
		if cfg.HW[m] {
			mm := m
			t := NewTask(m, mm.React, func(cfsm.Snapshot) int64 { return cfg.HWDelay })
			s.hwOf[m] = t
			continue
		}
		t, err := makeTask(m)
		if err != nil {
			return nil, err
		}
		t.Priority = cfg.Priority[m]
		s.taskOf[m] = t
		s.Tasks = append(s.Tasks, t)
	}
	for sig, d := range cfg.Deliver {
		if d == Polling {
			_ = sig
			s.hasPolling = true
		}
	}
	s.chainNext = make(map[*Task]*Task)
	for _, chain := range cfg.Chains {
		for i := 0; i+1 < len(chain); i++ {
			a := s.taskOf[chain[i]]
			b := s.taskOf[chain[i+1]]
			if a != nil && b != nil {
				s.chainNext[a] = b
			}
		}
	}
	s.nextPoll = cfg.PollPeriod
	return s, nil
}

// TaskFor returns the runtime task of a software machine.
func (s *System) TaskFor(m *cfsm.CFSM) *Task { return s.taskOf[m] }

// delivery returns the configured mechanism for a signal.
func (s *System) delivery(sig *cfsm.Signal) Delivery {
	if d, ok := s.Cfg.Deliver[sig]; ok {
		return d
	}
	return Interrupt
}

// EmitEnv injects an environment event at the current time. Events
// bound for software pass through the configured delivery mechanism
// (interrupt or polling), exactly like emissions from the hardware
// partition.
func (s *System) EmitEnv(sig *cfsm.Signal, val int64) {
	s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: "env"})
	s.routeFromHardware(sig, val)
}

// routeFromHardware delivers an event produced outside the CPU: to
// hardware readers directly, to software readers by interrupt or by
// latching it at the poll port.
func (s *System) routeFromHardware(sig *cfsm.Signal, val int64) {
	interrupted := false
	for _, m := range s.N.Readers(sig) {
		if hw, ok := s.hwOf[m]; ok {
			hw.post(sig, val)
			s.startHW()
			continue
		}
		switch s.delivery(sig) {
		case Polling:
			s.pollPort[sig] = true
			s.pollValue[sig] = val
		case Interrupt:
			if !interrupted {
				// One interrupt services all sensitive tasks.
				interrupted = true
				s.Interrupts++
				s.stealCPU(s.Cfg.ISROverhead)
			}
			s.postToTask(s.taskOf[m], sig, val, s.Cfg.InISR[sig])
		}
	}
}

// emitFromSW delivers an event emitted by a software task.
func (s *System) emitFromSW(from *Task, sig *cfsm.Signal, val int64) {
	s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: from.M.Name})
	readers := s.N.Readers(sig)
	extra := len(readers) - 1
	if extra > 0 {
		s.stealCPU(int64(extra) * s.Cfg.EmitOverhead)
	}
	for _, m := range readers {
		if hw, ok := s.hwOf[m]; ok {
			// SW -> HW through a memory-mapped port: immediate.
			hw.post(sig, val)
			s.startHW()
			continue
		}
		s.postToTask(s.taskOf[m], sig, val, false)
	}
}

// emitFromHW delivers emissions of a completed hardware reaction.
func (s *System) emitFromHW(from *Task, sig *cfsm.Signal, val int64) {
	s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: from.M.Name})
	s.routeFromHardware(sig, val)
}

// postToTask sets the private flag and handles preemption and
// ISR-context execution.
func (s *System) postToTask(t *Task, sig *cfsm.Signal, val int64, inISR bool) {
	if t == nil {
		return
	}
	t.post(sig, val)
	if inISR && !t.running {
		// Execute the critical task inside the ISR, ahead of
		// everything, unless it is already running.
		snap := t.begin()
		r := t.react(snap)
		d := t.cost(snap)
		s.preemptCurrent()
		s.current = &running{task: t, reaction: r, end: s.Now + d, inISR: true}
		return
	}
	if s.Cfg.Preemptive && s.current != nil && !s.current.inISR &&
		t.Priority > s.current.task.Priority && t.Enabled() {
		s.preemptCurrent()
	}
}

// preemptCurrent suspends the in-flight execution, remembering its
// remaining cycles.
func (s *System) preemptCurrent() {
	if s.current == nil {
		return
	}
	cur := s.current
	cur.end -= s.Now // store remaining cycles
	s.stack = append(s.stack, cur)
	s.current = nil
}

// stealCPU models cycles taken from the running task by ISR or RTOS
// bookkeeping: an in-flight execution finishes later.
func (s *System) stealCPU(cycles int64) {
	if cycles <= 0 {
		return
	}
	s.BusyCycles += cycles
	if s.current != nil {
		s.current.end += cycles
		return
	}
	if s.freeAt < s.Now {
		s.freeAt = s.Now
	}
	s.freeAt += cycles
}

// startHW begins reactions of enabled hardware machines; they run
// concurrently off-CPU.
func (s *System) startHW() {
	for _, hw := range s.hwOf {
		if !hw.running && hw.Enabled() {
			snap := hw.begin()
			r := hw.react(snap)
			s.hwRuns = append(s.hwRuns, &hwRun{task: hw, reaction: r, end: s.Now + s.Cfg.HWDelay})
		}
	}
}

// pickTask selects the next enabled software task under the policy.
func (s *System) pickTask() *Task {
	n := len(s.Tasks)
	if n == 0 {
		return nil
	}
	switch s.Cfg.Policy {
	case RoundRobin:
		for i := 0; i < n; i++ {
			t := s.Tasks[(s.rr+i)%n]
			if t.Enabled() {
				s.rr = (s.rr + i + 1) % n
				return t
			}
		}
	case StaticPriority:
		var best *Task
		for _, t := range s.Tasks {
			if !t.Enabled() {
				continue
			}
			if best == nil || t.Priority > best.Priority {
				best = t
			}
		}
		return best
	}
	return nil
}

// resume pops the most recently preempted execution.
func (s *System) resume() {
	if len(s.stack) == 0 {
		return
	}
	cur := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	cur.end += s.Now // restore absolute completion time
	s.current = cur
}

// Advance runs the system until the given absolute time (in cycles).
func (s *System) Advance(to int64) error {
	if to < s.Now {
		return fmt.Errorf("rtos: time going backwards (%d < %d)", to, s.Now)
	}
	for {
		// Start work if the CPU is idle and not held by ISR/poll
		// bookkeeping. A preempted execution resumes unless a
		// strictly higher-priority task is enabled.
		if s.current == nil && s.Now >= s.freeAt {
			cand := s.pickTask()
			if len(s.stack) > 0 {
				top := s.stack[len(s.stack)-1]
				if cand == nil || !s.Cfg.Preemptive || cand.Priority <= top.task.Priority {
					s.resume()
					cand = nil
				}
			}
			if cand != nil {
				s.ScheduleCalls++
				snap := cand.begin()
				r := cand.react(snap)
				d := cand.cost(snap)
				s.BusyCycles += s.Cfg.ScheduleOverhead + d
				s.current = &running{task: cand, reaction: r, end: s.Now + s.Cfg.ScheduleOverhead + d}
			}
		}

		// Find the next event.
		next := to
		kind := 0 // 0 none, 1 task done, 2 hw done, 3 poll, 4 cpu free
		if s.current != nil && s.current.end <= next {
			next = s.current.end
			kind = 1
		}
		if s.current == nil && s.freeAt > s.Now && s.workPending() && s.freeAt <= next {
			next = s.freeAt
			kind = 4
		}
		for _, h := range s.hwRuns {
			if h.end <= next {
				next = h.end
				kind = 2
			}
		}
		if s.hasPolling && s.nextPoll <= next {
			next = s.nextPoll
			kind = 3
		}
		if kind == 0 {
			s.Now = to
			return nil
		}
		s.Now = next
		switch kind {
		case 4:
			// CPU released by ISR/poll bookkeeping; loop to dispatch.
		case 1:
			cur := s.current
			s.current = nil
			cur.task.finish(cur.reaction)
			for _, em := range cur.reaction.Emitted {
				s.emitFromSW(cur.task, em.Signal, em.Value)
			}
			// Chained successor: run back to back without a
			// scheduler decision (Section IV-A).
			if next := s.chainNext[cur.task]; next != nil && next.Enabled() && s.current == nil {
				snap := next.begin()
				r := next.react(snap)
				d := next.cost(snap)
				s.BusyCycles += d
				s.current = &running{task: next, reaction: r, end: s.Now + d}
			}
		case 2:
			// Complete all hardware runs due now.
			var done []*hwRun
			var rest []*hwRun
			for _, h := range s.hwRuns {
				if h.end <= s.Now {
					done = append(done, h)
				} else {
					rest = append(rest, h)
				}
			}
			s.hwRuns = rest
			sort.SliceStable(done, func(i, j int) bool { return done[i].end < done[j].end })
			for _, h := range done {
				h.task.finish(h.reaction)
				for _, em := range h.reaction.Emitted {
					s.emitFromHW(h.task, em.Signal, em.Value)
				}
			}
			s.startHW() // buffered events may re-enable them
		case 3:
			s.Polls++
			s.nextPoll += s.Cfg.PollPeriod
			s.stealCPU(s.Cfg.PollOverhead)
			for sig, p := range s.pollPort {
				if !p {
					continue
				}
				val := s.pollValue[sig]
				s.pollPort[sig] = false
				for _, m := range s.N.Readers(sig) {
					if t, ok := s.taskOf[m]; ok && s.delivery(sig) == Polling {
						s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: "poll"})
						s.postToTask(t, sig, val, false)
					}
				}
			}
		}
	}
}

// workPending reports whether any software work is waiting.
func (s *System) workPending() bool {
	if len(s.stack) > 0 {
		return true
	}
	for _, t := range s.Tasks {
		if t.Enabled() {
			return true
		}
	}
	return false
}

// higherPendingNone reports whether no enabled task outranks the top
// of the preemption stack (so resuming is correct).
func (s *System) higherPendingNone() bool {
	if len(s.stack) == 0 {
		return false
	}
	top := s.stack[len(s.stack)-1]
	if !s.Cfg.Preemptive {
		return true
	}
	for _, t := range s.Tasks {
		if t.Enabled() && t.Priority > top.task.Priority {
			return false
		}
	}
	return true
}

// Utilization returns the fraction of elapsed cycles the CPU was busy.
func (s *System) Utilization() float64 {
	if s.Now == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Now)
}
