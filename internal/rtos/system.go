package rtos

import (
	"context"
	"fmt"

	"polis/internal/cfsm"
)

// TraceEvent records one event occurrence during execution.
type TraceEvent struct {
	Time   int64
	Signal *cfsm.Signal
	Value  int64
	From   string // emitting machine, "env", or "isr"/"poll" for deliveries
}

// Probe observes the runtime at its three semantic points: an event
// delivered to a task's buffers, an execution starting with a frozen
// snapshot, and an execution completing. The netfuzz harness uses the
// stream to maintain a redundant model of the one-place-buffer and
// freeze-window semantics and cross-checks it against the
// implementation; the hooks carry raw deliveries, so a bug (or an
// injected Mutant) in the buffer bookkeeping cannot distort the
// observation stream that convicts it. env marks deliveries that
// originate directly from an environment stimulus (EmitEnv with
// interrupt delivery); internal emissions, hardware completions and
// deferred poll deliveries carry env=false.
//
// The hooks keep the map-based Snapshot/Reaction types; the runtime
// materialises them from its dense buffers only when a probe is
// attached, so probe-less simulation stays allocation-free.
type Probe interface {
	TaskPosted(t *Task, sig *cfsm.Signal, val int64, now int64, env bool)
	TaskBegan(t *Task, snap cfsm.Snapshot, now int64)
	TaskFinished(t *Task, r cfsm.Reaction, cycles int64, now int64)
}

// running is one in-flight software execution. The reaction's result
// lives in the task's reused buffers (a task has at most one in-flight
// execution), so the record is a small value — no per-execution
// allocation. task == nil marks "no execution".
type running struct {
	task  *Task
	end   int64
	cost  int64 // reaction cycles charged (without scheduler overhead)
	inISR bool
}

// hwRun is one in-flight hardware reaction.
type hwRun struct {
	task *Task
	end  int64
}

// routeEntry is one reader of a signal, in network order.
type routeEntry struct {
	t    *Task
	slot int // input slot of the signal in the reader's layout
	hw   bool
}

// sigRoute is the precomputed delivery plan of one signal: its readers
// in network order (so traces stay deterministic), the configured
// mechanism and the poll-port slot. Resolving this once at NewSystem
// removes the per-emission Readers() scan and map lookups from the hot
// loop.
type sigRoute struct {
	entries  []routeEntry
	swCount  int
	delivery Delivery
	inISR    bool
	pollSlot int // index into pollPort/pollValue; -1 when not polled
}

// System is the executable cycle-level model of one generated RTOS
// instance plus the CFSM network it serves. Software tasks contend for
// the single CPU under the configured policy; hardware machines react
// concurrently off-CPU after a fixed delay.
//
// Delivery is batched: when a reaction completes, its emissions are
// copied into a ring buffer and drained FIFO. Because emissions only
// ever occur at reaction completion (never while another emission is
// being routed), the FIFO drain delivers events in exactly the order
// the event-at-a-time reference implementation did.
type System struct {
	N   *cfsm.Network
	Cfg Config

	Tasks  []*Task // software tasks, in network order
	taskOf map[*cfsm.CFSM]*Task
	hwOf   map[*cfsm.CFSM]*Task
	// hwTasks lists hardware tasks in network order, so reaction
	// start-up is deterministic (map iteration is not).
	hwTasks []*Task

	// Probe, when set before the first EmitEnv/Advance, observes every
	// delivery, execution start and completion.
	Probe Probe

	// Ctx, when set, is polled periodically inside Advance so long
	// simulations cancel promptly; Advance then returns ctx.Err().
	Ctx context.Context

	Now   int64
	Trace []TraceEvent

	current   running
	stack     []running // preempted executions
	hwRuns    []hwRun
	hwScratch []hwRun // reused buffer for completions due now
	freeAt    int64   // CPU occupied by ISR/poll bookkeeping until here

	routes map[*cfsm.Signal]*sigRoute
	queue  emitQueue

	// Polling: events from hardware/environment latched at the I/O
	// port until the poll routine runs. pollSigs lists the polled
	// signals in network order; pollPort/pollValue are indexed by the
	// route's pollSlot.
	pollSigs   []*cfsm.Signal
	pollPort   []bool
	pollValue  []int64
	nextPoll   int64
	hasPolling bool

	rr       int // round-robin cursor
	ctxTicks int // iterations since the last Ctx poll

	// Stats
	ScheduleCalls int64
	Interrupts    int64
	Polls         int64
	BusyCycles    int64
	// PollDropped counts events overwritten at the one-place poll port
	// before the poll routine could deliver them — event loss that
	// never reaches a task's buffers but is legal under the paper's
	// semantics, and must be accounted rather than silent.
	PollDropped int64
}

// NewSystem builds the runtime. makeTask supplies each software
// machine's reaction function and cost model (behavioural or
// VM-backed); hardware machines always react behaviourally.
func NewSystem(n *cfsm.Network, cfg Config,
	makeTask func(m *cfsm.CFSM) (*Task, error)) (*System, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	s := &System{
		N:      n,
		Cfg:    cfg,
		taskOf: make(map[*cfsm.CFSM]*Task),
		hwOf:   make(map[*cfsm.CFSM]*Task),
	}
	for _, m := range n.Machines {
		if cfg.HW[m] {
			t := NewBehavioralTask(m, func() int64 { return cfg.HWDelay })
			t.mutant = cfg.Mutant
			s.hwOf[m] = t
			s.hwTasks = append(s.hwTasks, t)
			continue
		}
		t, err := makeTask(m)
		if err != nil {
			return nil, err
		}
		t.Priority = cfg.Priority[m]
		t.mutant = cfg.Mutant
		s.taskOf[m] = t
		s.Tasks = append(s.Tasks, t)
	}
	for _, d := range cfg.Deliver {
		if d == Polling {
			s.hasPolling = true
		}
	}
	for _, chain := range cfg.Chains {
		for i := 0; i+1 < len(chain); i++ {
			a := s.taskOf[chain[i]]
			b := s.taskOf[chain[i+1]]
			if a != nil && b != nil {
				a.chainNext = b
			}
		}
	}
	s.buildRoutes()
	s.nextPoll = cfg.PollPeriod
	return s, nil
}

// buildRoutes precomputes the delivery plan of every network signal.
func (s *System) buildRoutes() {
	s.routes = make(map[*cfsm.Signal]*sigRoute, len(s.N.Signals))
	for _, sig := range s.N.Signals {
		rt := &sigRoute{
			delivery: Interrupt,
			inISR:    s.Cfg.InISR[sig],
			pollSlot: -1,
		}
		if d, ok := s.Cfg.Deliver[sig]; ok {
			rt.delivery = d
		}
		for _, m := range s.N.Readers(sig) {
			if hw, ok := s.hwOf[m]; ok {
				rt.entries = append(rt.entries, routeEntry{t: hw, slot: hw.Lay.InSlot(sig), hw: true})
				continue
			}
			t := s.taskOf[m]
			rt.entries = append(rt.entries, routeEntry{t: t, slot: t.Lay.InSlot(sig)})
			rt.swCount++
		}
		s.routes[sig] = rt
	}
	// Poll ports, in network signal order (the drain order).
	for _, sig := range s.N.Signals {
		rt := s.routes[sig]
		if rt.delivery == Polling && rt.swCount > 0 {
			rt.pollSlot = len(s.pollSigs)
			s.pollSigs = append(s.pollSigs, sig)
		}
	}
	s.pollPort = make([]bool, len(s.pollSigs))
	s.pollValue = make([]int64, len(s.pollSigs))
}

// TaskFor returns the runtime task of a software machine.
func (s *System) TaskFor(m *cfsm.CFSM) *Task { return s.taskOf[m] }

// EmitEnv injects an environment event at the current time. Events
// bound for software pass through the configured delivery mechanism
// (interrupt or polling), exactly like emissions from the hardware
// partition. The returned error is a reaction failure of an
// ISR-context or hardware task (with the task name attached).
func (s *System) EmitEnv(sig *cfsm.Signal, val int64) error {
	s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: "env"})
	return s.routeFromHardware(sig, val, true)
}

// ResetTrace discards the recorded trace, keeping its capacity, so a
// long-running or benchmarked system does not grow (or re-allocate)
// the trace buffer without bound.
func (s *System) ResetTrace() { s.Trace = s.Trace[:0] }

// routeFromHardware delivers an event produced outside the CPU: to
// hardware readers directly, to software readers by interrupt or by
// latching it at the poll port. env marks direct environment stimuli
// for the probe.
func (s *System) routeFromHardware(sig *cfsm.Signal, val int64, env bool) error {
	rt := s.routes[sig]
	if rt == nil {
		return nil
	}
	interrupted := false
	for _, e := range rt.entries {
		if e.hw {
			s.probePosted(e.t, sig, val, env)
			e.t.post(e.slot, val)
			if err := s.startHW(); err != nil {
				return err
			}
			continue
		}
		switch rt.delivery {
		case Polling:
			if s.pollPort[rt.pollSlot] {
				// One-place port: the undelivered event is lost.
				s.PollDropped++
			}
			s.pollPort[rt.pollSlot] = true
			s.pollValue[rt.pollSlot] = val
		case Interrupt:
			if !interrupted {
				// One interrupt services all sensitive tasks.
				interrupted = true
				s.Interrupts++
				s.stealCPU(s.Cfg.ISROverhead)
			}
			if err := s.postToTask(e.t, e.slot, sig, val, rt.inISR, env); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitFromSW delivers an event emitted by a software task.
func (s *System) emitFromSW(from *Task, sig *cfsm.Signal, val int64) error {
	s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: from.M.Name})
	rt := s.routes[sig]
	if rt == nil {
		return nil
	}
	extra := len(rt.entries) - 1
	if extra > 0 {
		s.stealCPU(int64(extra) * s.Cfg.EmitOverhead)
	}
	for _, e := range rt.entries {
		if e.hw {
			// SW -> HW through a memory-mapped port: immediate.
			s.probePosted(e.t, sig, val, false)
			e.t.post(e.slot, val)
			if err := s.startHW(); err != nil {
				return err
			}
			continue
		}
		if err := s.postToTask(e.t, e.slot, sig, val, false, false); err != nil {
			return err
		}
	}
	return nil
}

// pushEmissions copies a completed reaction's emissions into the ring.
// Copying before any routing runs matters: routing can re-begin the
// emitting task in ISR context, which would overwrite the reused
// reaction buffer the emissions live in.
func (s *System) pushEmissions(from *Task, hw bool) {
	for _, em := range from.out.Emitted {
		s.queue.push(emitRec{from: from, sig: em.Signal, val: em.Value, hw: hw})
	}
}

// drainQueue routes queued emissions FIFO. Reactions triggered while
// draining (ISR-context executions) do not emit until they complete in
// the event loop, so the queue never grows mid-drain and the delivery
// order matches event-at-a-time routing exactly.
func (s *System) drainQueue() error {
	for !s.queue.empty() {
		e := s.queue.pop()
		if e.hw {
			s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: e.sig, Value: e.val, From: e.from.M.Name})
			if err := s.routeFromHardware(e.sig, e.val, false); err != nil {
				return err
			}
			continue
		}
		if err := s.emitFromSW(e.from, e.sig, e.val); err != nil {
			return err
		}
	}
	return nil
}

// probePosted reports a raw delivery to the probe.
func (s *System) probePosted(t *Task, sig *cfsm.Signal, val int64, env bool) {
	if s.Probe != nil {
		s.Probe.TaskPosted(t, sig, val, s.Now, env)
	}
}

// taskError attributes a reaction failure to its CFSM.
func taskError(t *Task, err error) error {
	return fmt.Errorf("rtos: task %s: %w", t.M.Name, err)
}

// beginTask freezes a snapshot, runs the reaction function and charges
// its cost, reporting begin to the probe. It is the single path every
// execution start takes. The reaction's result lives in t.out until
// finishTask.
func (s *System) beginTask(t *Task) (int64, error) {
	snap := t.begin()
	if s.Probe != nil {
		s.Probe.TaskBegan(t, snap.Snapshot(), s.Now)
	}
	if err := t.react(snap, &t.out); err != nil {
		return 0, taskError(t, err)
	}
	return t.cost(), nil
}

// finishTask completes an execution and reports it to the probe.
func (s *System) finishTask(t *Task, cycles int64) {
	var r cfsm.Reaction
	if s.Probe != nil {
		r = t.out.Reaction(t.Lay)
	}
	t.finish(t.out.Fired, t.out.NextState)
	if s.Probe != nil {
		s.Probe.TaskFinished(t, r, cycles, s.Now)
	}
}

// postToTask sets the private flag and handles preemption and
// ISR-context execution.
func (s *System) postToTask(t *Task, slot int, sig *cfsm.Signal, val int64, inISR, env bool) error {
	if t == nil {
		return nil
	}
	s.probePosted(t, sig, val, env)
	t.post(slot, val)
	if inISR && !t.running {
		// Execute the critical task inside the ISR, ahead of
		// everything, unless it is already running.
		d, err := s.beginTask(t)
		if err != nil {
			return err
		}
		s.preemptCurrent()
		s.current = running{task: t, end: s.Now + d, cost: d, inISR: true}
		return nil
	}
	if s.Cfg.Preemptive && s.current.task != nil && !s.current.inISR &&
		t.Priority > s.current.task.Priority && t.Enabled() {
		s.preemptCurrent()
	}
	return nil
}

// preemptCurrent suspends the in-flight execution, remembering its
// remaining cycles.
func (s *System) preemptCurrent() {
	if s.current.task == nil {
		return
	}
	cur := s.current
	cur.end -= s.Now // store remaining cycles
	s.stack = append(s.stack, cur)
	s.current.task = nil
}

// stealCPU models cycles taken from the running task by ISR or RTOS
// bookkeeping: an in-flight execution finishes later.
func (s *System) stealCPU(cycles int64) {
	if cycles <= 0 {
		return
	}
	s.BusyCycles += cycles
	if s.current.task != nil {
		s.current.end += cycles
		return
	}
	if s.freeAt < s.Now {
		s.freeAt = s.Now
	}
	s.freeAt += cycles
}

// startHW begins reactions of enabled hardware machines; they run
// concurrently off-CPU. Iteration follows network order so the start
// sequence (and the resulting trace) is deterministic.
func (s *System) startHW() error {
	for _, hw := range s.hwTasks {
		if !hw.running && hw.Enabled() {
			if _, err := s.beginTask(hw); err != nil {
				return err
			}
			s.hwRuns = append(s.hwRuns, hwRun{task: hw, end: s.Now + s.Cfg.HWDelay})
		}
	}
	return nil
}

// pickTask selects the next enabled software task under the policy.
func (s *System) pickTask() *Task {
	n := len(s.Tasks)
	if n == 0 {
		return nil
	}
	switch s.Cfg.Policy {
	case RoundRobin:
		for i := 0; i < n; i++ {
			t := s.Tasks[(s.rr+i)%n]
			if t.Enabled() {
				s.rr = (s.rr + i + 1) % n
				return t
			}
		}
	case StaticPriority:
		var best *Task
		for _, t := range s.Tasks {
			if !t.Enabled() {
				continue
			}
			if best == nil || t.Priority > best.Priority {
				best = t
			}
		}
		return best
	}
	return nil
}

// resume pops the most recently preempted execution.
func (s *System) resume() {
	if len(s.stack) == 0 {
		return
	}
	cur := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	cur.end += s.Now // restore absolute completion time
	s.current = cur
}

// Advance runs the system until the given absolute time (in cycles).
func (s *System) Advance(to int64) error {
	if to < s.Now {
		return fmt.Errorf("rtos: time going backwards (%d < %d)", to, s.Now)
	}
	for {
		if s.Ctx != nil {
			if s.ctxTicks++; s.ctxTicks >= 1024 {
				s.ctxTicks = 0
				if err := s.Ctx.Err(); err != nil {
					return err
				}
			}
		}
		// Start work if the CPU is idle and not held by ISR/poll
		// bookkeeping. A preempted execution resumes unless a
		// strictly higher-priority task is enabled.
		if s.current.task == nil && s.Now >= s.freeAt {
			cand := s.pickTask()
			if len(s.stack) > 0 {
				top := s.stack[len(s.stack)-1]
				if cand == nil || !s.Cfg.Preemptive || cand.Priority <= top.task.Priority {
					s.resume()
					cand = nil
				}
			}
			if cand != nil {
				s.ScheduleCalls++
				d, err := s.beginTask(cand)
				if err != nil {
					return err
				}
				s.BusyCycles += s.Cfg.ScheduleOverhead + d
				s.current = running{task: cand, end: s.Now + s.Cfg.ScheduleOverhead + d, cost: d}
			}
		}

		// Find the next event.
		next := to
		kind := 0 // 0 none, 1 task done, 2 hw done, 3 poll, 4 cpu free
		if s.current.task != nil && s.current.end <= next {
			next = s.current.end
			kind = 1
		}
		if s.current.task == nil && s.freeAt > s.Now && s.workPending() && s.freeAt <= next {
			next = s.freeAt
			kind = 4
		}
		for i := range s.hwRuns {
			if s.hwRuns[i].end <= next {
				next = s.hwRuns[i].end
				kind = 2
			}
		}
		if s.hasPolling && s.nextPoll <= next {
			next = s.nextPoll
			kind = 3
		}
		if kind == 0 {
			s.Now = to
			return nil
		}
		s.Now = next
		switch kind {
		case 4:
			// CPU released by ISR/poll bookkeeping; loop to dispatch.
		case 1:
			cur := s.current
			s.current.task = nil
			s.finishTask(cur.task, cur.cost)
			s.pushEmissions(cur.task, false)
			if err := s.drainQueue(); err != nil {
				return err
			}
			// Chained successor: run back to back without a
			// scheduler decision (Section IV-A).
			if nxt := cur.task.chainNext; nxt != nil && nxt.Enabled() && s.current.task == nil {
				d, err := s.beginTask(nxt)
				if err != nil {
					return err
				}
				s.BusyCycles += d
				s.current = running{task: nxt, end: s.Now + d, cost: d}
			}
		case 2:
			// Complete all hardware runs due now, earliest deadline
			// first (stable for equal deadlines, like the reference).
			done := s.hwScratch[:0]
			rest := s.hwRuns[:0]
			for _, h := range s.hwRuns {
				if h.end <= s.Now {
					done = append(done, h)
				} else {
					rest = append(rest, h)
				}
			}
			s.hwRuns = rest
			for i := 1; i < len(done); i++ {
				for j := i; j > 0 && done[j].end < done[j-1].end; j-- {
					done[j], done[j-1] = done[j-1], done[j]
				}
			}
			for _, h := range done {
				s.finishTask(h.task, s.Cfg.HWDelay)
				s.pushEmissions(h.task, true)
				if err := s.drainQueue(); err != nil {
					return err
				}
			}
			s.hwScratch = done[:0]
			// Buffered events may re-enable them.
			if err := s.startHW(); err != nil {
				return err
			}
		case 3:
			s.Polls++
			s.nextPoll += s.Cfg.PollPeriod
			s.stealCPU(s.Cfg.PollOverhead)
			// Drain the port in network signal order, so merges (and
			// thus traces) are identical between runs.
			for i, sig := range s.pollSigs {
				if !s.pollPort[i] {
					continue
				}
				val := s.pollValue[i]
				s.pollPort[i] = false
				rt := s.routes[sig]
				for _, e := range rt.entries {
					if e.hw {
						continue
					}
					s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: "poll"})
					if err := s.postToTask(e.t, e.slot, sig, val, false, false); err != nil {
						return err
					}
				}
			}
		}
	}
}

// workPending reports whether any software work is waiting.
func (s *System) workPending() bool {
	if len(s.stack) > 0 {
		return true
	}
	for _, t := range s.Tasks {
		if t.Enabled() {
			return true
		}
	}
	return false
}

// Utilization returns the fraction of elapsed cycles the CPU was busy.
func (s *System) Utilization() float64 {
	if s.Now == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Now)
}
