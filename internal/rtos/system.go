package rtos

import (
	"fmt"
	"sort"

	"polis/internal/cfsm"
)

// TraceEvent records one event occurrence during execution.
type TraceEvent struct {
	Time   int64
	Signal *cfsm.Signal
	Value  int64
	From   string // emitting machine, "env", or "isr"/"poll" for deliveries
}

// Probe observes the runtime at its three semantic points: an event
// delivered to a task's buffers, an execution starting with a frozen
// snapshot, and an execution completing. The netfuzz harness uses the
// stream to maintain a redundant model of the one-place-buffer and
// freeze-window semantics and cross-checks it against the
// implementation; the hooks carry raw deliveries, so a bug (or an
// injected Mutant) in the buffer bookkeeping cannot distort the
// observation stream that convicts it. env marks deliveries that
// originate directly from an environment stimulus (EmitEnv with
// interrupt delivery); internal emissions, hardware completions and
// deferred poll deliveries carry env=false.
type Probe interface {
	TaskPosted(t *Task, sig *cfsm.Signal, val int64, now int64, env bool)
	TaskBegan(t *Task, snap cfsm.Snapshot, now int64)
	TaskFinished(t *Task, r cfsm.Reaction, cycles int64, now int64)
}

// running is one in-flight software execution.
type running struct {
	task     *Task
	reaction cfsm.Reaction
	end      int64
	cost     int64 // reaction cycles charged (without scheduler overhead)
	inISR    bool
}

// hwRun is one in-flight hardware reaction.
type hwRun struct {
	task     *Task
	reaction cfsm.Reaction
	end      int64
}

// System is the executable cycle-level model of one generated RTOS
// instance plus the CFSM network it serves. Software tasks contend for
// the single CPU under the configured policy; hardware machines react
// concurrently off-CPU after a fixed delay.
type System struct {
	N   *cfsm.Network
	Cfg Config

	Tasks  []*Task // software tasks, in network order
	taskOf map[*cfsm.CFSM]*Task
	hwOf   map[*cfsm.CFSM]*Task
	// hwTasks lists hardware tasks in network order, so reaction
	// start-up is deterministic (map iteration is not).
	hwTasks []*Task
	// chainNext maps a task to its chain successor (Section IV-A).
	chainNext map[*Task]*Task

	// Probe, when set before the first EmitEnv/Advance, observes every
	// delivery, execution start and completion.
	Probe Probe

	Now   int64
	Trace []TraceEvent

	current *running
	stack   []*running // preempted executions
	hwRuns  []*hwRun
	freeAt  int64 // CPU occupied by ISR/poll bookkeeping until here

	// Polling: events from hardware/environment latched at the I/O
	// port until the poll routine runs.
	pollPort   map[*cfsm.Signal]bool
	pollValue  map[*cfsm.Signal]int64
	nextPoll   int64
	hasPolling bool

	rr int // round-robin cursor

	// Stats
	ScheduleCalls int64
	Interrupts    int64
	Polls         int64
	BusyCycles    int64
	// PollDropped counts events overwritten at the one-place poll port
	// before the poll routine could deliver them — event loss that
	// never reaches a task's buffers but is legal under the paper's
	// semantics, and must be accounted rather than silent.
	PollDropped int64
	idleSince   int64
}

// NewSystem builds the runtime. makeTask supplies each software
// machine's reaction function and cost model (behavioural or
// VM-backed); hardware machines always react behaviourally.
func NewSystem(n *cfsm.Network, cfg Config,
	makeTask func(m *cfsm.CFSM) (*Task, error)) (*System, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	s := &System{
		N:         n,
		Cfg:       cfg,
		taskOf:    make(map[*cfsm.CFSM]*Task),
		hwOf:      make(map[*cfsm.CFSM]*Task),
		pollPort:  make(map[*cfsm.Signal]bool),
		pollValue: make(map[*cfsm.Signal]int64),
	}
	for _, m := range n.Machines {
		if cfg.HW[m] {
			mm := m
			t := NewTask(m, Infallible(mm.React), func(cfsm.Snapshot) int64 { return cfg.HWDelay })
			t.mutant = cfg.Mutant
			s.hwOf[m] = t
			s.hwTasks = append(s.hwTasks, t)
			continue
		}
		t, err := makeTask(m)
		if err != nil {
			return nil, err
		}
		t.Priority = cfg.Priority[m]
		t.mutant = cfg.Mutant
		s.taskOf[m] = t
		s.Tasks = append(s.Tasks, t)
	}
	for sig, d := range cfg.Deliver {
		if d == Polling {
			_ = sig
			s.hasPolling = true
		}
	}
	s.chainNext = make(map[*Task]*Task)
	for _, chain := range cfg.Chains {
		for i := 0; i+1 < len(chain); i++ {
			a := s.taskOf[chain[i]]
			b := s.taskOf[chain[i+1]]
			if a != nil && b != nil {
				s.chainNext[a] = b
			}
		}
	}
	s.nextPoll = cfg.PollPeriod
	return s, nil
}

// TaskFor returns the runtime task of a software machine.
func (s *System) TaskFor(m *cfsm.CFSM) *Task { return s.taskOf[m] }

// delivery returns the configured mechanism for a signal.
func (s *System) delivery(sig *cfsm.Signal) Delivery {
	if d, ok := s.Cfg.Deliver[sig]; ok {
		return d
	}
	return Interrupt
}

// EmitEnv injects an environment event at the current time. Events
// bound for software pass through the configured delivery mechanism
// (interrupt or polling), exactly like emissions from the hardware
// partition. The returned error is a reaction failure of an
// ISR-context or hardware task (with the task name attached).
func (s *System) EmitEnv(sig *cfsm.Signal, val int64) error {
	s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: "env"})
	return s.routeFromHardware(sig, val, true)
}

// routeFromHardware delivers an event produced outside the CPU: to
// hardware readers directly, to software readers by interrupt or by
// latching it at the poll port. env marks direct environment stimuli
// for the probe.
func (s *System) routeFromHardware(sig *cfsm.Signal, val int64, env bool) error {
	interrupted := false
	for _, m := range s.N.Readers(sig) {
		if hw, ok := s.hwOf[m]; ok {
			s.probePosted(hw, sig, val, env)
			hw.post(sig, val)
			if err := s.startHW(); err != nil {
				return err
			}
			continue
		}
		switch s.delivery(sig) {
		case Polling:
			if s.pollPort[sig] {
				// One-place port: the undelivered event is lost.
				s.PollDropped++
			}
			s.pollPort[sig] = true
			s.pollValue[sig] = val
		case Interrupt:
			if !interrupted {
				// One interrupt services all sensitive tasks.
				interrupted = true
				s.Interrupts++
				s.stealCPU(s.Cfg.ISROverhead)
			}
			if err := s.postToTask(s.taskOf[m], sig, val, s.Cfg.InISR[sig], env); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitFromSW delivers an event emitted by a software task.
func (s *System) emitFromSW(from *Task, sig *cfsm.Signal, val int64) error {
	s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: from.M.Name})
	readers := s.N.Readers(sig)
	extra := len(readers) - 1
	if extra > 0 {
		s.stealCPU(int64(extra) * s.Cfg.EmitOverhead)
	}
	for _, m := range readers {
		if hw, ok := s.hwOf[m]; ok {
			// SW -> HW through a memory-mapped port: immediate.
			s.probePosted(hw, sig, val, false)
			hw.post(sig, val)
			if err := s.startHW(); err != nil {
				return err
			}
			continue
		}
		if err := s.postToTask(s.taskOf[m], sig, val, false, false); err != nil {
			return err
		}
	}
	return nil
}

// emitFromHW delivers emissions of a completed hardware reaction.
func (s *System) emitFromHW(from *Task, sig *cfsm.Signal, val int64) error {
	s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: from.M.Name})
	return s.routeFromHardware(sig, val, false)
}

// probePosted reports a raw delivery to the probe.
func (s *System) probePosted(t *Task, sig *cfsm.Signal, val int64, env bool) {
	if s.Probe != nil {
		s.Probe.TaskPosted(t, sig, val, s.Now, env)
	}
}

// taskError attributes a reaction failure to its CFSM.
func taskError(t *Task, err error) error {
	return fmt.Errorf("rtos: task %s: %w", t.M.Name, err)
}

// beginTask freezes a snapshot, runs the reaction function and charges
// its cost, reporting begin to the probe. It is the single path every
// execution start takes.
func (s *System) beginTask(t *Task) (cfsm.Reaction, int64, error) {
	snap := t.begin()
	if s.Probe != nil {
		s.Probe.TaskBegan(t, snap, s.Now)
	}
	r, err := t.react(snap)
	if err != nil {
		return cfsm.Reaction{}, 0, taskError(t, err)
	}
	return r, t.cost(snap), nil
}

// finishTask completes an execution and reports it to the probe.
func (s *System) finishTask(t *Task, r cfsm.Reaction, cycles int64) {
	t.finish(r)
	if s.Probe != nil {
		s.Probe.TaskFinished(t, r, cycles, s.Now)
	}
}

// postToTask sets the private flag and handles preemption and
// ISR-context execution.
func (s *System) postToTask(t *Task, sig *cfsm.Signal, val int64, inISR, env bool) error {
	if t == nil {
		return nil
	}
	s.probePosted(t, sig, val, env)
	t.post(sig, val)
	if inISR && !t.running {
		// Execute the critical task inside the ISR, ahead of
		// everything, unless it is already running.
		r, d, err := s.beginTask(t)
		if err != nil {
			return err
		}
		s.preemptCurrent()
		s.current = &running{task: t, reaction: r, end: s.Now + d, cost: d, inISR: true}
		return nil
	}
	if s.Cfg.Preemptive && s.current != nil && !s.current.inISR &&
		t.Priority > s.current.task.Priority && t.Enabled() {
		s.preemptCurrent()
	}
	return nil
}

// preemptCurrent suspends the in-flight execution, remembering its
// remaining cycles.
func (s *System) preemptCurrent() {
	if s.current == nil {
		return
	}
	cur := s.current
	cur.end -= s.Now // store remaining cycles
	s.stack = append(s.stack, cur)
	s.current = nil
}

// stealCPU models cycles taken from the running task by ISR or RTOS
// bookkeeping: an in-flight execution finishes later.
func (s *System) stealCPU(cycles int64) {
	if cycles <= 0 {
		return
	}
	s.BusyCycles += cycles
	if s.current != nil {
		s.current.end += cycles
		return
	}
	if s.freeAt < s.Now {
		s.freeAt = s.Now
	}
	s.freeAt += cycles
}

// startHW begins reactions of enabled hardware machines; they run
// concurrently off-CPU. Iteration follows network order so the start
// sequence (and the resulting trace) is deterministic.
func (s *System) startHW() error {
	for _, hw := range s.hwTasks {
		if !hw.running && hw.Enabled() {
			r, _, err := s.beginTask(hw)
			if err != nil {
				return err
			}
			s.hwRuns = append(s.hwRuns, &hwRun{task: hw, reaction: r, end: s.Now + s.Cfg.HWDelay})
		}
	}
	return nil
}

// pickTask selects the next enabled software task under the policy.
func (s *System) pickTask() *Task {
	n := len(s.Tasks)
	if n == 0 {
		return nil
	}
	switch s.Cfg.Policy {
	case RoundRobin:
		for i := 0; i < n; i++ {
			t := s.Tasks[(s.rr+i)%n]
			if t.Enabled() {
				s.rr = (s.rr + i + 1) % n
				return t
			}
		}
	case StaticPriority:
		var best *Task
		for _, t := range s.Tasks {
			if !t.Enabled() {
				continue
			}
			if best == nil || t.Priority > best.Priority {
				best = t
			}
		}
		return best
	}
	return nil
}

// resume pops the most recently preempted execution.
func (s *System) resume() {
	if len(s.stack) == 0 {
		return
	}
	cur := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	cur.end += s.Now // restore absolute completion time
	s.current = cur
}

// Advance runs the system until the given absolute time (in cycles).
func (s *System) Advance(to int64) error {
	if to < s.Now {
		return fmt.Errorf("rtos: time going backwards (%d < %d)", to, s.Now)
	}
	for {
		// Start work if the CPU is idle and not held by ISR/poll
		// bookkeeping. A preempted execution resumes unless a
		// strictly higher-priority task is enabled.
		if s.current == nil && s.Now >= s.freeAt {
			cand := s.pickTask()
			if len(s.stack) > 0 {
				top := s.stack[len(s.stack)-1]
				if cand == nil || !s.Cfg.Preemptive || cand.Priority <= top.task.Priority {
					s.resume()
					cand = nil
				}
			}
			if cand != nil {
				s.ScheduleCalls++
				r, d, err := s.beginTask(cand)
				if err != nil {
					return err
				}
				s.BusyCycles += s.Cfg.ScheduleOverhead + d
				s.current = &running{task: cand, reaction: r, end: s.Now + s.Cfg.ScheduleOverhead + d, cost: d}
			}
		}

		// Find the next event.
		next := to
		kind := 0 // 0 none, 1 task done, 2 hw done, 3 poll, 4 cpu free
		if s.current != nil && s.current.end <= next {
			next = s.current.end
			kind = 1
		}
		if s.current == nil && s.freeAt > s.Now && s.workPending() && s.freeAt <= next {
			next = s.freeAt
			kind = 4
		}
		for _, h := range s.hwRuns {
			if h.end <= next {
				next = h.end
				kind = 2
			}
		}
		if s.hasPolling && s.nextPoll <= next {
			next = s.nextPoll
			kind = 3
		}
		if kind == 0 {
			s.Now = to
			return nil
		}
		s.Now = next
		switch kind {
		case 4:
			// CPU released by ISR/poll bookkeeping; loop to dispatch.
		case 1:
			cur := s.current
			s.current = nil
			s.finishTask(cur.task, cur.reaction, cur.cost)
			for _, em := range cur.reaction.Emitted {
				if err := s.emitFromSW(cur.task, em.Signal, em.Value); err != nil {
					return err
				}
			}
			// Chained successor: run back to back without a
			// scheduler decision (Section IV-A).
			if next := s.chainNext[cur.task]; next != nil && next.Enabled() && s.current == nil {
				r, d, err := s.beginTask(next)
				if err != nil {
					return err
				}
				s.BusyCycles += d
				s.current = &running{task: next, reaction: r, end: s.Now + d, cost: d}
			}
		case 2:
			// Complete all hardware runs due now.
			var done []*hwRun
			var rest []*hwRun
			for _, h := range s.hwRuns {
				if h.end <= s.Now {
					done = append(done, h)
				} else {
					rest = append(rest, h)
				}
			}
			s.hwRuns = rest
			sort.SliceStable(done, func(i, j int) bool { return done[i].end < done[j].end })
			for _, h := range done {
				s.finishTask(h.task, h.reaction, s.Cfg.HWDelay)
				for _, em := range h.reaction.Emitted {
					if err := s.emitFromHW(h.task, em.Signal, em.Value); err != nil {
						return err
					}
				}
			}
			// Buffered events may re-enable them.
			if err := s.startHW(); err != nil {
				return err
			}
		case 3:
			s.Polls++
			s.nextPoll += s.Cfg.PollPeriod
			s.stealCPU(s.Cfg.PollOverhead)
			// Drain the port in network signal order: map iteration
			// order would make merges (and thus traces) vary between
			// identical runs.
			for _, sig := range s.N.Signals {
				if !s.pollPort[sig] {
					continue
				}
				val := s.pollValue[sig]
				s.pollPort[sig] = false
				for _, m := range s.N.Readers(sig) {
					if t, ok := s.taskOf[m]; ok && s.delivery(sig) == Polling {
						s.Trace = append(s.Trace, TraceEvent{Time: s.Now, Signal: sig, Value: val, From: "poll"})
						if err := s.postToTask(t, sig, val, false, false); err != nil {
							return err
						}
					}
				}
			}
		}
	}
}

// workPending reports whether any software work is waiting.
func (s *System) workPending() bool {
	if len(s.stack) > 0 {
		return true
	}
	for _, t := range s.Tasks {
		if t.Enabled() {
			return true
		}
	}
	return false
}

// higherPendingNone reports whether no enabled task outranks the top
// of the preemption stack (so resuming is correct).
func (s *System) higherPendingNone() bool {
	if len(s.stack) == 0 {
		return false
	}
	top := s.stack[len(s.stack)-1]
	if !s.Cfg.Preemptive {
		return true
	}
	for _, t := range s.Tasks {
		if t.Enabled() && t.Priority > top.task.Priority {
			return false
		}
	}
	return true
}

// Utilization returns the fraction of elapsed cycles the CPU was busy.
func (s *System) Utilization() float64 {
	if s.Now == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Now)
}
