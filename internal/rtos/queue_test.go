package rtos

import (
	"testing"

	"polis/internal/cfsm"
)

// TestEmitQueueSlotHygiene pins the pop-side invariant: a vacated ring
// slot is fully zeroed — from, sig, val AND hw — so no field of a
// drained record can leak into a later read of the same slot. The
// FIFO order and grow-time unrolling are exercised along the way.
func TestEmitQueueSlotHygiene(t *testing.T) {
	sig := &cfsm.Signal{Name: "s"}
	task := &Task{}
	var q emitQueue

	// Fill past the initial capacity so grow unrolls a wrapped ring:
	// offset head first, then push enough records to force doubling.
	for i := 0; i < 5; i++ {
		q.push(emitRec{from: task, sig: sig, val: int64(1000 + i), hw: true})
	}
	for i := 0; i < 5; i++ {
		q.pop()
	}
	const n = 40 // > 16 initial slots, so grow runs with head > 0
	for i := 0; i < n; i++ {
		q.push(emitRec{from: task, sig: sig, val: int64(i), hw: i%2 == 0})
	}
	for i := 0; i < n; i++ {
		got := q.pop()
		if got.from != task || got.sig != sig || got.val != int64(i) || got.hw != (i%2 == 0) {
			t.Fatalf("pop %d: got %+v", i, got)
		}
	}
	if !q.empty() {
		t.Fatal("queue should be empty after draining")
	}
	// Every slot of the ring must be fully cleared now: nothing of the
	// drained records — values and flags included — may remain.
	for i, slot := range q.buf {
		if slot != (emitRec{}) {
			t.Fatalf("slot %d not cleared after pop: %+v", i, slot)
		}
	}

	// Reuse after drain: records pushed into recycled slots must read
	// back exactly, proving pops can't corrupt subsequent pushes.
	q.push(emitRec{from: task, sig: sig, val: 7})
	got := q.pop()
	if got.val != 7 || got.hw {
		t.Fatalf("recycled slot returned %+v", got)
	}
}
