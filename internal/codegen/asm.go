package codegen

import (
	"fmt"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// SignalMap assigns the small integer ids under which the RTOS knows
// signals; the SVC instructions of generated code use them.
type SignalMap map[*cfsm.Signal]int

// NewSignalMap numbers the inputs and outputs of a CFSM consecutively.
func NewSignalMap(c *cfsm.CFSM) SignalMap {
	m := make(SignalMap)
	id := 0
	for _, s := range c.Inputs {
		m[s] = id
		id++
	}
	for _, s := range c.Outputs {
		if _, ok := m[s]; !ok {
			m[s] = id
			id++
		}
	}
	return m
}

// Options controls code generation.
type Options struct {
	// OptimizeCopies enables the write-before-read data-flow
	// analysis: only state variables assigned before a later read
	// get an entry copy. Off reproduces the paper's conservative
	// copy-everything behaviour (Section V-B).
	OptimizeCopies bool
	// IfThreshold is the TEST arity at or below which a chain of
	// compare-and-branch instructions is generated instead of a jump
	// table (the paper's target-dependent switch/if parameter).
	IfThreshold int
}

// Register conventions of generated code.
const (
	RegVal = 1 // expression results
	RegTmp = 2 // expression left operands
	RegAux = 3 // scratch for comparisons and immediates
	// RegAcc holds multi-way outcome accumulators; it must be
	// distinct from everything CompileExpr touches, since predicates
	// are compiled while an accumulation is in flight.
	RegAcc = 4
)

// Builder carries the shared state of one routine's generation:
// program, prologue copies, address maps and the expression compiler.
// The s-graph assembler uses it, and so do the alternative code
// generators (boolean-circuit and two-level-jump baselines), so all
// strategies share one lowering of expressions, emissions and RTOS
// traps and their costs stay comparable.
type Builder struct {
	c    *cfsm.CFSM
	p    *vm.Program
	sigs SignalMap
	opts Options
	plan *CopyPlan

	stateAddr map[*cfsm.StateVar]int // persistent state words
	curAddr   map[*cfsm.StateVar]int // entry copies (when needed)
	valAddr   map[*cfsm.Signal]int   // input value copies
	tmpDepth  int
	maxTmp    int
}

// NewBuilder prepares a routine for the given CFSM: the entry label is
// marked, state words are allocated and the copy-on-entry prologue is
// emitted according to plan (nil means the conservative plan derived
// from the whole CFSM: everything read is copied). Callers then emit
// the body through the Builder's methods and finish with Finish.
func NewBuilder(c *cfsm.CFSM, sigs SignalMap, opts Options, plan *CopyPlan) (*Builder, error) {
	if opts.IfThreshold == 0 {
		opts.IfThreshold = 2
	}
	if plan == nil {
		plan = ConservativePlan(c)
	}
	a := &Builder{
		c:         c,
		p:         vm.NewProgram(c.Name),
		sigs:      sigs,
		opts:      opts,
		plan:      plan,
		stateAddr: make(map[*cfsm.StateVar]int),
		curAddr:   make(map[*cfsm.StateVar]int),
		valAddr:   make(map[*cfsm.Signal]int),
	}
	for _, sv := range c.States {
		a.stateAddr[sv] = a.p.Alloc("st_" + sv.Name)
	}
	if err := a.p.Mark(EntryLabel(c)); err != nil {
		return nil, err
	}
	a.prologue()
	return a, nil
}

// Prog exposes the program under construction for direct emission.
func (a *Builder) Prog() *vm.Program { return a.p }

// Finish resolves labels and returns the completed program.
func (a *Builder) Finish() (*vm.Program, error) {
	if err := a.p.Resolve(); err != nil {
		return nil, err
	}
	return a.p, nil
}

// StateAddr returns the persistent data word of a state variable.
func (a *Builder) StateAddr(sv *cfsm.StateVar) int { return a.stateAddr[sv] }

// StateReadAddr returns the data word reads of a state variable use:
// its entry copy when one exists, else the persistent word.
func (a *Builder) StateReadAddr(sv *cfsm.StateVar) int { return a.stateReadAddr(sv) }

// SignalID returns the RTOS id of a signal.
func (a *Builder) SignalID(s *cfsm.Signal) int { return a.sigs[s] }

// ConservativePlan marks every variable occurring in any test or
// action of the CFSM as read and needing a copy — what a generator
// that cannot see paths must assume.
func ConservativePlan(c *cfsm.CFSM) *CopyPlan {
	plan := &CopyPlan{
		Read:      make(map[*cfsm.StateVar]bool),
		NeedCopy:  make(map[*cfsm.StateVar]bool),
		ValueRead: make(map[*cfsm.Signal]bool),
	}
	byName := make(map[string]*cfsm.StateVar)
	for _, sv := range c.States {
		byName[sv.Name] = sv
	}
	sigByName := make(map[string]*cfsm.Signal)
	for _, s := range c.Inputs {
		sigByName[s.Name] = s
	}
	note := func(names []string) {
		for _, n := range names {
			if len(n) > 0 && n[0] == '?' {
				if sig := sigByName[n[1:]]; sig != nil {
					plan.ValueRead[sig] = true
				}
				continue
			}
			if sv := byName[n]; sv != nil {
				plan.Read[sv] = true
				plan.NeedCopy[sv] = true
			}
		}
	}
	for _, t := range c.Tests {
		switch t.Kind {
		case cfsm.TestPredicate:
			note(t.Pred.Vars(nil))
		case cfsm.TestSelector:
			plan.Read[t.Sel] = true
			plan.NeedCopy[t.Sel] = true
		}
	}
	for _, act := range c.Actions {
		switch act.Kind {
		case cfsm.ActEmit:
			if act.Value != nil {
				note(act.Value.Vars(nil))
			}
		case cfsm.ActAssign:
			note(act.Expr.Vars(nil))
		}
	}
	return plan
}

// EntryLabel returns the label of a CFSM's reaction routine.
func EntryLabel(c *cfsm.CFSM) string { return c.Name + "_react" }

// Assemble translates an s-graph into a routine for the virtual CPU.
// The routine reads event presence and values through SVC traps,
// updates the persistent state words allocated in the program, and
// halts. State variables live in the program's data memory and keep
// their values across runs of one vm.Machine.
func Assemble(g *sgraph.SGraph, sigs SignalMap, opts Options) (*vm.Program, error) {
	a, err := NewBuilder(g.C, sigs, opts, AnalyzeCopies(g))
	if err != nil {
		return nil, err
	}
	if err := a.body(g); err != nil {
		return nil, err
	}
	return a.Finish()
}

// prologue copies state variables and input values on entry, per the
// paper's copy-on-entry discipline (optionally trimmed by data flow).
func (a *Builder) prologue() {
	for _, sv := range a.c.States {
		need := a.plan.Read[sv]
		if a.opts.OptimizeCopies {
			need = a.plan.NeedCopy[sv]
		}
		if !need {
			continue
		}
		cur := a.p.Alloc("cur_" + sv.Name)
		a.curAddr[sv] = cur
		a.p.Emit(vm.Instr{Op: vm.LD, Rd: RegVal, Addr: a.stateAddr[sv], Comment: "copy " + sv.Name})
		a.p.Emit(vm.Instr{Op: vm.ST, Addr: cur, Rs: RegVal})
	}
	for _, sig := range a.c.Inputs {
		if sig.Pure || !a.plan.ValueRead[sig] {
			continue
		}
		addr := a.p.Alloc("val_" + sig.Name)
		a.valAddr[sig] = addr
		a.p.Emit(vm.Instr{Op: vm.SVC, Num: vm.SvcValue, Imm: int64(a.sigs[sig]), Comment: "?" + sig.Name})
		a.p.Emit(vm.Instr{Op: vm.ST, Addr: addr, Rs: 0})
	}
}

// readAddr resolves an expression variable name to a data address.
func (a *Builder) readAddr(name string) (int, error) {
	if len(name) > 0 && name[0] == '?' {
		for _, sig := range a.c.Inputs {
			if sig.Name == name[1:] {
				if addr, ok := a.valAddr[sig]; ok {
					return addr, nil
				}
				return 0, fmt.Errorf("codegen: value of %s read but not copied", sig.Name)
			}
		}
		return 0, fmt.Errorf("codegen: unknown input value %q", name)
	}
	for _, sv := range a.c.States {
		if sv.Name == name {
			if cur, ok := a.curAddr[sv]; ok {
				return cur, nil
			}
			// No copy needed: the persistent word still holds the
			// pre-reaction value at every read.
			return a.stateAddr[sv], nil
		}
	}
	return 0, fmt.Errorf("codegen: unknown variable %q", name)
}

// stateReadAddr returns the address selector tests read.
func (a *Builder) stateReadAddr(sv *cfsm.StateVar) int {
	if cur, ok := a.curAddr[sv]; ok {
		return cur
	}
	return a.stateAddr[sv]
}

// CompileExpr evaluates e into register RegVal using the simple
// two-register stack schema (partial results spill to per-depth
// temporaries), mirroring what a very simple embedded C compiler
// produces — which is exactly the regime the paper's estimator is
// calibrated for.
func (a *Builder) CompileExpr(e expr.Expr) error {
	switch x := e.(type) {
	case expr.Const:
		a.p.Emit(vm.Instr{Op: vm.LDI, Rd: RegVal, Imm: int64(x)})
		return nil
	case expr.Ref:
		addr, err := a.readAddr(string(x))
		if err != nil {
			return err
		}
		a.p.Emit(vm.Instr{Op: vm.LD, Rd: RegVal, Addr: addr})
		return nil
	case *expr.Un:
		if err := a.CompileExpr(x.X); err != nil {
			return err
		}
		switch x.Op {
		case expr.UnNeg:
			a.p.Emit(vm.Instr{Op: vm.NEG, Rd: RegVal})
		case expr.UnNot:
			a.p.Emit(vm.Instr{Op: vm.NOT, Rd: RegVal})
		default:
			// Bitwise complement as -x - 1.
			a.p.Emit(vm.Instr{Op: vm.NEG, Rd: RegVal})
			a.p.Emit(vm.Instr{Op: vm.LDI, Rd: RegTmp, Imm: 1})
			a.p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpSub, Rd: RegVal, Rs: RegTmp})
		}
		return nil
	case *expr.Bin:
		if err := a.CompileExpr(x.L); err != nil {
			return err
		}
		tmp := a.p.Alloc(fmt.Sprintf("tmp%d", a.tmpDepth))
		a.tmpDepth++
		if a.tmpDepth > a.maxTmp {
			a.maxTmp = a.tmpDepth
		}
		a.p.Emit(vm.Instr{Op: vm.ST, Addr: tmp, Rs: RegVal})
		if err := a.CompileExpr(x.R); err != nil {
			return err
		}
		a.tmpDepth--
		a.p.Emit(vm.Instr{Op: vm.LD, Rd: RegTmp, Addr: tmp})
		a.p.Emit(vm.Instr{Op: vm.ALU, AOp: x.Op, Rd: RegTmp, Rs: RegVal})
		a.p.Emit(vm.Instr{Op: vm.MOV, Rd: RegVal, Rs: RegTmp})
		return nil
	}
	return fmt.Errorf("codegen: unknown expression node %T", e)
}

func vlabel(v *sgraph.Vertex) string { return fmt.Sprintf("v%d", v.ID) }

// body emits all reachable vertices in DFS order, falling through to
// the next vertex where the layout allows and jumping otherwise.
func (a *Builder) body(g *sgraph.SGraph) error {
	order := g.Reachable() // DFS pre-order, Begin first
	pos := make(map[*sgraph.Vertex]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for i, v := range order {
		if err := a.p.Mark(vlabel(v)); err != nil {
			return err
		}
		next := func(w *sgraph.Vertex) {
			if i+1 < len(order) && order[i+1] == w {
				return // fall through
			}
			a.p.Emit(vm.Instr{Op: vm.JMP, Label: vlabel(w)})
		}
		switch v.Kind {
		case sgraph.Begin:
			next(v.Next)
		case sgraph.End:
			a.p.Emit(vm.Instr{Op: vm.HALT})
		case sgraph.Assign:
			if err := a.EmitAction(v.Action); err != nil {
				return err
			}
			next(v.Next)
		case sgraph.Test:
			if err := a.emitTest(v, next); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitTest lowers a TEST vertex: presence tests through an RTOS trap,
// predicates through expression code, selectors and collapsed tests
// through a jump table or a compare-and-branch chain depending on
// arity (the paper's switch/if threshold).
func (a *Builder) emitTest(v *sgraph.Vertex, next func(w *sgraph.Vertex)) error {
	if len(v.Tests) == 1 && v.Tests[0].Arity() == 2 {
		t := v.Tests[0]
		// The branch sense follows the hot order: the fall-through arm
		// is FallIdx() (outcome 0 unless specialized), and the branch
		// takes the other outcome. BRZ and BRNZ cost the same in both
		// size profiles, so swapping the sense is free.
		brOp, brTo, fall := vm.BRNZ, v.Children[1], v.Children[0]
		if v.FallIdx() == 1 {
			brOp, brTo, fall = vm.BRZ, v.Children[0], v.Children[1]
		}
		switch t.Kind {
		case cfsm.TestPresence:
			a.p.Emit(vm.Instr{Op: vm.SVC, Num: vm.SvcPresent, Imm: int64(a.sigs[t.Signal]),
				Comment: t.Name()})
			a.p.Emit(vm.Instr{Op: brOp, Rs: 0, Label: vlabel(brTo)})
		case cfsm.TestPredicate:
			if err := a.CompileExpr(t.Pred); err != nil {
				return err
			}
			a.p.Emit(vm.Instr{Op: brOp, Rs: RegVal, Label: vlabel(brTo)})
		default:
			a.p.Emit(vm.Instr{Op: vm.LD, Rd: RegVal, Addr: a.stateReadAddr(t.Sel), Comment: t.Name()})
			a.p.Emit(vm.Instr{Op: brOp, Rs: RegVal, Label: vlabel(brTo)})
		}
		next(fall)
		return nil
	}
	// Multi-way: compute the combined outcome index into RegAcc
	// (CompileExpr may run mid-accumulation and clobbers RegVal,
	// RegTmp and RegAux).
	a.p.Emit(vm.Instr{Op: vm.LDI, Rd: RegAcc, Imm: 0})
	for _, t := range v.Tests {
		if t.Arity() > 1 {
			a.p.Emit(vm.Instr{Op: vm.LDI, Rd: RegAux, Imm: int64(t.Arity())})
			a.p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpMul, Rd: RegAcc, Rs: RegAux})
		}
		switch t.Kind {
		case cfsm.TestPresence:
			a.p.Emit(vm.Instr{Op: vm.SVC, Num: vm.SvcPresent, Imm: int64(a.sigs[t.Signal]),
				Comment: t.Name()})
			a.p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpAdd, Rd: RegAcc, Rs: 0})
		case cfsm.TestPredicate:
			if err := a.CompileExpr(t.Pred); err != nil {
				return err
			}
			// Normalise to 0/1.
			a.p.Emit(vm.Instr{Op: vm.NOT, Rd: RegVal})
			a.p.Emit(vm.Instr{Op: vm.NOT, Rd: RegVal})
			a.p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpAdd, Rd: RegAcc, Rs: RegVal})
		default:
			a.p.Emit(vm.Instr{Op: vm.LD, Rd: RegVal, Addr: a.stateReadAddr(t.Sel), Comment: t.Name()})
			a.p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpAdd, Rd: RegAcc, Rs: RegVal})
		}
	}
	if v.Arity() <= a.opts.IfThreshold {
		// Compare-and-branch chain in emission order: cold outcomes
		// pay the later comparisons, the hottest falls through.
		for pos := 1; pos < v.Arity(); pos++ {
			idx := v.OutcomeAt(pos)
			a.p.Emit(vm.Instr{Op: vm.LDI, Rd: RegAux, Imm: int64(idx)})
			a.p.Emit(vm.Instr{Op: vm.BR, Cond: vm.CondEQ, Rs: RegAcc, Rt: RegAux,
				Label: vlabel(v.Children[idx])})
		}
		next(v.Children[v.FallIdx()])
		return nil
	}
	table := make([]string, v.Arity())
	for idx, c := range v.Children {
		table[idx] = vlabel(c)
	}
	a.p.Emit(vm.Instr{Op: vm.JTAB, Rs: RegAcc, Table: table})
	return nil
}

// emitAction lowers an ASSIGN vertex.
func (a *Builder) EmitAction(act *cfsm.Action) error {
	switch act.Kind {
	case cfsm.ActEmit:
		if act.Value == nil {
			a.p.Emit(vm.Instr{Op: vm.SVC, Num: vm.SvcEmit, Imm: int64(a.sigs[act.Signal]),
				Comment: act.Name()})
			return nil
		}
		if err := a.CompileExpr(act.Value); err != nil {
			return err
		}
		a.p.Emit(vm.Instr{Op: vm.SVC, Num: vm.SvcEmitV, Imm: int64(a.sigs[act.Signal]), Rs: RegVal,
			Comment: act.Name()})
		return nil
	case cfsm.ActAssign:
		if err := a.CompileExpr(act.Expr); err != nil {
			return err
		}
		a.p.Emit(vm.Instr{Op: vm.ST, Addr: a.stateAddr[act.Var], Rs: RegVal, Comment: act.Name()})
		return nil
	}
	return fmt.Errorf("codegen: unknown action kind")
}

// InitStateMemory writes the initial values of the CFSM's state
// variables into a machine's memory.
func InitStateMemory(g *sgraph.SGraph, p *vm.Program, m *vm.Machine) {
	for _, sv := range g.C.States {
		if addr, ok := p.Symbols["st_"+sv.Name]; ok {
			m.Mem[addr] = sv.Init
		}
	}
}
