package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// snapHost exposes a CFSM snapshot to the VM and records emissions.
type snapHost struct {
	sigs    SignalMap
	byID    map[int]*cfsm.Signal
	snap    cfsm.Snapshot
	emitted []cfsm.Emission
}

func newSnapHost(sigs SignalMap, snap cfsm.Snapshot) *snapHost {
	h := &snapHost{sigs: sigs, byID: make(map[int]*cfsm.Signal), snap: snap}
	for s, id := range sigs {
		h.byID[id] = s
	}
	return h
}

func (h *snapHost) Present(sig int) bool { return h.snap.Present[h.byID[sig]] }
func (h *snapHost) Value(sig int) int64  { return h.snap.Values[h.byID[sig]] }
func (h *snapHost) Emit(sig int) {
	h.emitted = append(h.emitted, cfsm.Emission{Signal: h.byID[sig]})
}
func (h *snapHost) EmitValue(sig int, v int64) {
	h.emitted = append(h.emitted, cfsm.Emission{Signal: h.byID[sig], Value: v})
}

func simple() *cfsm.CFSM {
	c := cfsm.New("simple")
	in := c.AddInput("c", false)
	y := c.AddOutput("y", true)
	a := c.AddState("a", 0, 0)
	pc := c.Present(in)
	eq := c.Pred(expr.Eq(expr.V("a"), expr.V("?c")))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 1)},
		c.Assign(a, expr.C(0)), c.Emit(y))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 0)},
		c.Assign(a, expr.Add(expr.V("a"), expr.C(1))))
	return c
}

func counter() *cfsm.CFSM {
	c := cfsm.New("counter")
	tick := c.AddInput("tick", true)
	rst := c.AddInput("rst", true)
	out := c.AddOutput("wrap", false)
	st := c.AddState("st", 5, 0)
	p := c.Present(tick)
	pr := c.Present(rst)
	sel := c.Sel(st)
	for k := 0; k < 5; k++ {
		c.AddTransition(
			[]cfsm.Cond{cfsm.On(pr, 1), cfsm.On(sel, k)},
			c.Assign(st, expr.C(0)))
	}
	for k := 0; k < 5; k++ {
		next := (k + 1) % 5
		acts := []*cfsm.Action{c.Assign(st, expr.C(int64(next)))}
		if next == 0 {
			acts = append(acts, c.EmitV(out, expr.Mul(expr.V("st"), expr.C(2))))
		}
		c.AddTransition(
			[]cfsm.Cond{cfsm.On(pr, 0), cfsm.On(p, 1), cfsm.On(sel, k)},
			acts...)
	}
	return c
}

// swapper needs copy-on-entry: it exchanges two variables.
func swapper() *cfsm.CFSM {
	c := cfsm.New("swapper")
	go_ := c.AddInput("go", true)
	x := c.AddState("x", 0, 1)
	y := c.AddState("y", 0, 2)
	p := c.Present(go_)
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1)},
		c.Assign(x, expr.V("y")),
		c.Assign(y, expr.V("x")))
	return c
}

func buildSG(t *testing.T, c *cfsm.CFSM, ord sgraph.Ordering) *sgraph.SGraph {
	t.Helper()
	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sgraph.Build(r, ord)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runVM executes one reaction on the VM from the given snapshot and
// returns the emissions and resulting state values.
func runVM(t *testing.T, g *sgraph.SGraph, p *vm.Program, prof *vm.Profile,
	snap cfsm.Snapshot, sigs SignalMap) ([]cfsm.Emission, map[*cfsm.StateVar]int64) {
	t.Helper()
	h := newSnapHost(sigs, snap)
	m := vm.NewMachine(prof, p.Words, h)
	InitStateMemory(g, p, m)
	for _, sv := range g.C.States {
		m.Mem[p.Symbols["st_"+sv.Name]] = snap.State[sv]
	}
	if _, err := m.Run(p, EntryLabel(g.C)); err != nil {
		t.Fatalf("vm run: %v\n%s", err, p.Listing())
	}
	state := make(map[*cfsm.StateVar]int64)
	for _, sv := range g.C.States {
		state[sv] = m.Mem[p.Symbols["st_"+sv.Name]]
	}
	return h.emitted, state
}

// checkVMEquiv compares VM execution with the s-graph interpreter on
// random snapshots.
func checkVMEquiv(t *testing.T, c *cfsm.CFSM, opts Options, seed int64) {
	t.Helper()
	g := buildSG(t, c, sgraph.OrderSiftAfterSupport)
	sigs := NewSignalMap(c)
	p, err := Assemble(g, sigs, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, prof := range []*vm.Profile{vm.HC11(), vm.R3K()} {
		for i := 0; i < 150; i++ {
			snap := c.NewSnapshot()
			for _, in := range c.Inputs {
				snap.Present[in] = rng.Intn(2) == 1
				if !in.Pure {
					snap.Values[in] = int64(rng.Intn(6))
				}
			}
			for _, sv := range c.States {
				if sv.Domain > 0 {
					snap.State[sv] = int64(rng.Intn(sv.Domain))
				} else {
					snap.State[sv] = int64(rng.Intn(6))
				}
			}
			want := g.Evaluate(snap)
			gotEm, gotState := runVM(t, g, p, prof, snap, sigs)
			if len(want.Emitted) != len(gotEm) {
				t.Fatalf("%s iter %d: emissions %v vs %v", prof.Name, i, want.Emitted, gotEm)
			}
			for j := range want.Emitted {
				if want.Emitted[j].Signal != gotEm[j].Signal || want.Emitted[j].Value != gotEm[j].Value {
					t.Fatalf("%s iter %d: emission %d differs: %+v vs %+v",
						prof.Name, i, j, want.Emitted[j], gotEm[j])
				}
			}
			for _, sv := range c.States {
				if want.NextState[sv] != gotState[sv] {
					t.Fatalf("%s iter %d: state %s: want %d got %d",
						prof.Name, i, sv.Name, want.NextState[sv], gotState[sv])
				}
			}
		}
	}
}

func TestAssembleSimpleEquiv(t *testing.T) {
	checkVMEquiv(t, simple(), Options{}, 3)
}

func TestAssembleCounterEquiv(t *testing.T) {
	checkVMEquiv(t, counter(), Options{}, 5)
}

func TestAssembleSwapperEquiv(t *testing.T) {
	checkVMEquiv(t, swapper(), Options{}, 7)
	checkVMEquiv(t, swapper(), Options{OptimizeCopies: true}, 9)
}

func TestAssembleWithJumpTables(t *testing.T) {
	checkVMEquiv(t, counter(), Options{IfThreshold: 1}, 11)
}

func TestAssembleWithIfChains(t *testing.T) {
	checkVMEquiv(t, counter(), Options{IfThreshold: 100}, 13)
}

func TestCollapsedGraphAssembles(t *testing.T) {
	c := counter()
	g := buildSG(t, c, sgraph.OrderSiftAfterSupport)
	g.CollapseTests(32)
	sigs := NewSignalMap(c)
	p, err := Assemble(g, sigs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	prof := vm.HC11()
	for i := 0; i < 100; i++ {
		snap := c.NewSnapshot()
		for _, in := range c.Inputs {
			snap.Present[in] = rng.Intn(2) == 1
		}
		for _, sv := range c.States {
			snap.State[sv] = int64(rng.Intn(sv.Domain))
		}
		want := g.Evaluate(snap)
		gotEm, gotState := runVM(t, g, p, prof, snap, sigs)
		if len(want.Emitted) != len(gotEm) {
			t.Fatalf("iter %d: emissions differ", i)
		}
		for _, sv := range c.States {
			if want.NextState[sv] != gotState[sv] {
				t.Fatalf("iter %d: state differs", i)
			}
		}
	}
}

func TestCopyAnalysis(t *testing.T) {
	// swapper writes x then (on the same path) reads x for y := x, so
	// x needs a copy; simple's a := a + 1 reads before any write on
	// the path, so no copy is required.
	gs := buildSG(t, swapper(), sgraph.OrderSiftAfterSupport)
	plan := AnalyzeCopies(gs)
	needNames := map[string]bool{}
	for sv, need := range plan.NeedCopy {
		if need {
			needNames[sv.Name] = true
		}
	}
	if !needNames["x"] && !needNames["y"] {
		t.Errorf("swapper: expected x or y to need a copy, got %v", needNames)
	}

	gsimple := buildSG(t, simple(), sgraph.OrderSiftAfterSupport)
	plan2 := AnalyzeCopies(gsimple)
	for sv, need := range plan2.NeedCopy {
		if need {
			t.Errorf("simple: %s should not need a copy", sv.Name)
		}
	}
	// But its input value is read.
	found := false
	for sig, r := range plan2.ValueRead {
		if r && sig.Name == "c" {
			found = true
		}
	}
	if !found {
		t.Error("simple: value of c must be marked read")
	}
}

func TestOptimizeCopiesShrinksCode(t *testing.T) {
	c := simple()
	g := buildSG(t, c, sgraph.OrderSiftAfterSupport)
	sigs := NewSignalMap(c)
	pFull, err := Assemble(g, sigs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pOpt, err := Assemble(g, sigs, Options{OptimizeCopies: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := vm.HC11()
	if prof.CodeSize(pOpt) >= prof.CodeSize(pFull) {
		t.Errorf("optimized copies must shrink code: %d vs %d",
			prof.CodeSize(pOpt), prof.CodeSize(pFull))
	}
	if pOpt.Words >= pFull.Words {
		t.Errorf("optimized copies must shrink data: %d vs %d words",
			pOpt.Words, pFull.Words)
	}
}

func TestEmitCSimple(t *testing.T) {
	c := simple()
	g := buildSG(t, c, sgraph.OrderSiftAfterSupport)
	src := EmitC(g, Options{})
	for _, needle := range []string{
		"void simple_react(void)",
		"PRESENT(c)",
		"EMIT(y)",
		"st_a =",
		"goto L",
		"int val_c = VALUE(c);",
		"#pragma cfsm simple",
	} {
		if !strings.Contains(src, needle) {
			t.Errorf("C output missing %q:\n%s", needle, src)
		}
	}
}

func TestEmitCSelectorSwitch(t *testing.T) {
	c := counter()
	g := buildSG(t, c, sgraph.OrderSiftAfterSupport)
	src := EmitC(g, Options{IfThreshold: 2})
	if !strings.Contains(src, "switch (") {
		t.Errorf("expected a switch for the 5-way selector:\n%s", src)
	}
	src2 := EmitC(g, Options{IfThreshold: 100})
	if strings.Contains(src2, "switch (") {
		t.Error("IfThreshold=100 must avoid switch statements")
	}
}

func TestRTOSHeader(t *testing.T) {
	h := RTOSHeader()
	for _, needle := range []string{"PRESENT", "EMIT_VALUE", "polis_emit", "DIV"} {
		if !strings.Contains(h, needle) {
			t.Errorf("header missing %q", needle)
		}
	}
}

func TestReplaceIdent(t *testing.T) {
	cases := []struct{ s, from, to, want string }{
		{"a + ab + a", "a", "cur_a", "cur_a + ab + cur_a"},
		{"(st * 2)", "st", "cur_st", "(cur_st * 2)"},
		{"?a + a", "a", "cur_a", "?a + cur_a"},
	}
	for _, c := range cases {
		if got := replaceIdent(c.s, c.from, c.to); got != c.want {
			t.Errorf("replaceIdent(%q,%q,%q) = %q, want %q", c.s, c.from, c.to, got, c.want)
		}
	}
}

func TestDeepExpressionSpill(t *testing.T) {
	// A deeply nested expression exercises the temp-spill schema.
	c := cfsm.New("deep")
	in := c.AddInput("v", false)
	o := c.AddOutput("o", false)
	p := c.Present(in)
	e := expr.Expr(expr.V("?v"))
	for i := 0; i < 6; i++ {
		e = expr.Add(expr.Mul(e, expr.C(2)), expr.C(int64(i)))
	}
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1)}, c.EmitV(o, e))
	checkVMEquiv(t, c, Options{}, 19)
}

func TestSignalMapStable(t *testing.T) {
	c := simple()
	m1 := NewSignalMap(c)
	m2 := NewSignalMap(c)
	for s, id := range m1 {
		if m2[s] != id {
			t.Error("signal map not deterministic")
		}
	}
}

func TestEmitCCollapsedMultiTest(t *testing.T) {
	// Collapsed TEST vertices carry several tests; the C emitter must
	// build the combined outcome index expression.
	c := counter()
	g := buildSG(t, c, sgraph.OrderSiftAfterSupport)
	merged := g.CollapseTests(64)
	if merged == 0 {
		t.Skip("no collapse opportunity on this machine")
	}
	src := EmitC(g, Options{})
	if !strings.Contains(src, ") * ") || !strings.Contains(src, "!!(") {
		t.Errorf("combined index expression missing:\n%s", src)
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces")
	}
}

// exclusiveTimer builds a machine whose MarkExclusive care set lets
// the s-graph reduction engine eliminate a TEST: the two threshold
// predicates cnt==49 and cnt==149 can never hold together, so the
// inner one is redundant on the path where the outer already fired.
func exclusiveTimer() *cfsm.CFSM {
	c := cfsm.New("extimer")
	start := c.AddInput("start", true)
	tick := c.AddInput("tick", true)
	end5 := c.AddOutput("end5", true)
	end10 := c.AddOutput("end10", true)
	on := c.AddState("on", 2, 0)
	cnt := c.AddState("cnt", 0, 0)
	sel := c.Sel(on)
	pStart := c.Present(start)
	pTick := c.Present(tick)
	at50 := c.Pred(expr.Eq(expr.V("cnt"), expr.C(49)))
	at150 := c.Pred(expr.Eq(expr.V("cnt"), expr.C(149)))
	c.MarkExclusive(at50, at150)
	c.AddTransition([]cfsm.Cond{cfsm.On(sel, 0), cfsm.On(pStart, 1)},
		c.Assign(on, expr.C(1)), c.Assign(cnt, expr.C(0)))
	c.AddTransition([]cfsm.Cond{cfsm.On(sel, 1), cfsm.On(pTick, 1), cfsm.On(at50, 1)},
		c.Emit(end5), c.Assign(cnt, expr.Add(expr.V("cnt"), expr.C(1))))
	c.AddTransition([]cfsm.Cond{cfsm.On(sel, 1), cfsm.On(pTick, 1), cfsm.On(at150, 1)},
		c.Emit(end10), c.Assign(on, expr.C(0)), c.Assign(cnt, expr.C(0)))
	c.AddTransition(
		[]cfsm.Cond{cfsm.On(sel, 1), cfsm.On(pTick, 1), cfsm.On(at50, 0), cfsm.On(at150, 0)},
		c.Assign(cnt, expr.Add(expr.V("cnt"), expr.C(1))))
	return c
}

// TestReducedGraphAssembles gates the reduction engine at the object
// code layer: a reduced s-graph must still assemble, the VM must match
// the s-graph interpreter on it, and for a machine where the care set
// actually removes a TEST the reduced code must not be larger.
func TestReducedGraphAssembles(t *testing.T) {
	prof := vm.HC11()
	for _, tc := range []struct {
		c        *cfsm.CFSM
		wantElim bool
	}{
		{counter(), false},
		{exclusiveTimer(), true},
	} {
		c := tc.c
		plain := buildSG(t, c, sgraph.OrderSiftAfterSupport)
		sigs := NewSignalMap(c)
		pPlain, err := Assemble(plain, sigs, Options{})
		if err != nil {
			t.Fatal(err)
		}

		g := buildSG(t, c, sgraph.OrderSiftAfterSupport)
		stats := g.Reduce(sgraph.ReduceOptions{})
		if tc.wantElim && stats.TestsEliminated == 0 {
			t.Fatalf("%s: reduction eliminated no TEST: %s", c.Name, stats.String())
		}
		p, err := Assemble(g, sigs, Options{})
		if err != nil {
			t.Fatalf("%s: assemble reduced graph: %v", c.Name, err)
		}
		if stats.Changed() && prof.CodeSize(p) > prof.CodeSize(pPlain) {
			t.Errorf("%s: reduced code grew: %d > %d bytes",
				c.Name, prof.CodeSize(p), prof.CodeSize(pPlain))
		}

		rng := rand.New(rand.NewSource(23))
		cntVals := []int64{0, 1, 48, 49, 50, 149, 150}
		for i := 0; i < 150; i++ {
			snap := c.NewSnapshot()
			for _, in := range c.Inputs {
				snap.Present[in] = rng.Intn(2) == 1
				if !in.Pure {
					snap.Values[in] = int64(rng.Intn(6))
				}
			}
			for _, sv := range c.States {
				if sv.Domain > 0 {
					snap.State[sv] = int64(rng.Intn(sv.Domain))
				} else {
					snap.State[sv] = cntVals[rng.Intn(len(cntVals))]
				}
			}
			want := g.Evaluate(snap)
			gotEm, gotState := runVM(t, g, p, prof, snap, sigs)
			if len(want.Emitted) != len(gotEm) {
				t.Fatalf("%s iter %d: emissions %v vs %v", c.Name, i, want.Emitted, gotEm)
			}
			for j := range want.Emitted {
				if want.Emitted[j].Signal != gotEm[j].Signal || want.Emitted[j].Value != gotEm[j].Value {
					t.Fatalf("%s iter %d: emission %d differs", c.Name, i, j)
				}
			}
			for _, sv := range c.States {
				if want.NextState[sv] != gotState[sv] {
					t.Fatalf("%s iter %d: state %s: want %d got %d",
						c.Name, i, sv.Name, want.NextState[sv], gotState[sv])
				}
			}
		}
	}
}
