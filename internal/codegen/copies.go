// Package codegen translates s-graphs into target code: portable C
// text (Section III-B4 of the paper) and object code for the virtual
// embedded CPU of internal/vm. The one-statement-per-vertex discipline
// the paper relies on for estimation is preserved: every s-graph
// vertex maps to a fixed, recognisable instruction pattern.
package codegen

import (
	"polis/internal/cfsm"
	"polis/internal/sgraph"
)

// CopyPlan records which state variables must be copied on routine
// entry. The paper's implementation copies every variable "to provide
// a safe implementation of the update of their next-state values" and
// notes that a data-flow analysis detecting write-before-read cases
// would reduce ROM, RAM and CPU time (Section V-B); NeedCopy computes
// exactly that analysis, and generators consult it when the
// OptimizeCopies option is on.
type CopyPlan struct {
	// Read reports state variables whose value some expression or
	// selector reads.
	Read map[*cfsm.StateVar]bool
	// NeedCopy reports state variables that are written on some path
	// before a later read — only these need an entry copy.
	NeedCopy map[*cfsm.StateVar]bool
	// ValueRead reports input signals whose carried value is read.
	ValueRead map[*cfsm.Signal]bool
}

// AnalyzeCopies runs the write-before-read data-flow analysis over all
// BEGIN-to-END paths of g.
func AnalyzeCopies(g *sgraph.SGraph) *CopyPlan {
	p := &CopyPlan{
		Read:      make(map[*cfsm.StateVar]bool),
		NeedCopy:  make(map[*cfsm.StateVar]bool),
		ValueRead: make(map[*cfsm.Signal]bool),
	}
	byName := make(map[string]*cfsm.StateVar)
	for _, sv := range g.C.States {
		byName[sv.Name] = sv
	}
	sigByName := make(map[string]*cfsm.Signal)
	for _, s := range g.C.Inputs {
		sigByName[s.Name] = s
	}
	noteReads := func(names []string, written map[*cfsm.StateVar]bool) {
		for _, n := range names {
			if len(n) > 0 && n[0] == '?' {
				if sig := sigByName[n[1:]]; sig != nil {
					p.ValueRead[sig] = true
				}
				continue
			}
			if sv := byName[n]; sv != nil {
				p.Read[sv] = true
				if written[sv] {
					p.NeedCopy[sv] = true
				}
			}
		}
	}
	// DFS carrying the written-set. Shared suffixes are revisited
	// once per distinct written-set signature; graphs here are small.
	type key struct {
		v   *sgraph.Vertex
		sig string
	}
	visited := make(map[key]bool)
	var walk func(v *sgraph.Vertex, written map[*cfsm.StateVar]bool, sig string)
	walk = func(v *sgraph.Vertex, written map[*cfsm.StateVar]bool, sig string) {
		k := key{v, sig}
		if visited[k] {
			return
		}
		visited[k] = true
		switch v.Kind {
		case sgraph.Begin:
			walk(v.Next, written, sig)
		case sgraph.End:
		case sgraph.Test:
			for _, t := range v.Tests {
				switch t.Kind {
				case cfsm.TestPredicate:
					noteReads(t.Pred.Vars(nil), written)
				case cfsm.TestSelector:
					p.Read[t.Sel] = true
					if written[t.Sel] {
						p.NeedCopy[t.Sel] = true
					}
				}
			}
			for _, c := range v.Children {
				walk(c, written, sig)
			}
		case sgraph.Assign:
			a := v.Action
			switch a.Kind {
			case cfsm.ActEmit:
				if a.Value != nil {
					noteReads(a.Value.Vars(nil), written)
				}
				walk(v.Next, written, sig)
			case cfsm.ActAssign:
				noteReads(a.Expr.Vars(nil), written)
				if !written[a.Var] {
					w2 := make(map[*cfsm.StateVar]bool, len(written)+1)
					for k := range written {
						w2[k] = true
					}
					w2[a.Var] = true
					walk(v.Next, w2, sig+"|"+a.Var.Name)
				} else {
					walk(v.Next, written, sig)
				}
			}
		}
	}
	walk(g.Begin, map[*cfsm.StateVar]bool{}, "")
	return p
}
