package designs

import (
	"polis/internal/cfsm"
	"polis/internal/expr"
)

// ShockAbsorber bundles the semi-active suspension controller of
// Section V-B: the computational chain from the body-acceleration
// sensor to the damper solenoid command, with driver mode selection, a
// watchdog and a diagnostic collector. The specification requires the
// sensor-to-actuator I/O latency to stay within its hard bound; the
// synthesized implementation and the hand-written reference both met
// it in the paper.
type ShockAbsorber struct {
	Net *cfsm.Network

	// Environment inputs.
	AccelSample *cfsm.Signal // valued: vertical acceleration sample
	SpeedSample *cfsm.Signal // valued: vehicle speed (km/h)
	ModeButton  *cfsm.Signal // valued: 0=auto, 1=comfort, 2=sport
	Tick        *cfsm.Signal // watchdog timebase
	ActAck      *cfsm.Signal // actuator acknowledge from the bridge

	// Outputs.
	Solenoid *cfsm.Signal // valued: damping command 0..7
	FailSafe *cfsm.Signal // watchdog tripped
	DiagCode *cfsm.Signal // valued diagnostic report

	// Internal.
	Smooth    *cfsm.Signal
	RoadClass *cfsm.Signal
	DampCmd   *cfsm.Signal
	Fault     *cfsm.Signal

	Filter    *cfsm.CFSM
	Estimator *cfsm.CFSM
	ModeLogic *cfsm.CFSM
	Actuator  *cfsm.CFSM
	Watchdog  *cfsm.CFSM
	Diag      *cfsm.CFSM
}

// Modules lists the shock-absorber CFSMs.
func (s *ShockAbsorber) Modules() []*cfsm.CFSM {
	return []*cfsm.CFSM{s.Filter, s.Estimator, s.ModeLogic, s.Actuator, s.Watchdog, s.Diag}
}

// NewShockAbsorber builds the controller network.
func NewShockAbsorber() *ShockAbsorber {
	n := cfsm.NewNetwork("shock_absorber")
	s := &ShockAbsorber{Net: n}

	s.AccelSample = n.NewSignal("accel_sample", false)
	s.SpeedSample = n.NewSignal("speed_sample", false)
	s.ModeButton = n.NewSignal("mode_button", false)
	s.Tick = n.NewSignal("wd_tick", true)
	s.ActAck = n.NewSignal("act_ack", true)
	s.Solenoid = n.NewSignal("solenoid", false)
	s.FailSafe = n.NewSignal("failsafe", true)
	s.DiagCode = n.NewSignal("diag_code", false)
	s.Smooth = n.NewSignal("smooth", false)
	s.RoadClass = n.NewSignal("road_class", false)
	s.DampCmd = n.NewSignal("damp_cmd", false)
	s.Fault = n.NewSignal("fault", false)

	on := cfsm.On

	// Filter: two-stage IIR low-pass on the rectified acceleration.
	f := cfsm.New("accel_filter")
	f.AttachInput(s.AccelSample)
	f.AttachOutput(s.Smooth)
	st1 := f.AddState("flt_s1", 0, 0)
	pA := f.Present(s.AccelSample)
	rect := expr.Max(expr.V("?accel_sample"), expr.NewNeg(expr.V("?accel_sample")))
	iir := expr.Div(expr.Add(expr.Mul(expr.V("flt_s1"), expr.C(7)), rect), expr.C(8))
	f.AddTransition([]cfsm.Cond{on(pA, 1)},
		f.EmitV(s.Smooth, iir), f.Assign(st1, iir))
	s.Filter = f

	// Estimator: classify road roughness into 0=smooth, 1=rough,
	// 2=very rough, with hysteresis on the running class.
	e := cfsm.New("road_estimator")
	e.AttachInput(s.Smooth)
	e.AttachOutput(s.RoadClass)
	cls := e.AddState("road_cls", 3, 0)
	pS := e.Present(s.Smooth)
	selCls := e.Sel(cls)
	hi := e.Pred(expr.Ge(expr.V("?smooth"), expr.C(60)))
	mid := e.Pred(expr.Ge(expr.V("?smooth"), expr.C(25)))
	// From any class: move to the class the level indicates.
	for from := 0; from < 3; from++ {
		e.AddTransition([]cfsm.Cond{on(pS, 1), on(selCls, from), on(hi, 1)},
			e.EmitV(s.RoadClass, expr.C(2)), e.Assign(cls, expr.C(2)))
		e.AddTransition([]cfsm.Cond{on(pS, 1), on(selCls, from), on(hi, 0), on(mid, 1)},
			e.EmitV(s.RoadClass, expr.C(1)), e.Assign(cls, expr.C(1)))
		e.AddTransition([]cfsm.Cond{on(pS, 1), on(selCls, from), on(hi, 0), on(mid, 0)},
			e.EmitV(s.RoadClass, expr.C(0)), e.Assign(cls, expr.C(0)))
	}
	s.Estimator = e

	// Mode logic: combine driver mode, road class and speed into the
	// damping command 0..7 (harder with rougher road, sport mode and
	// high speed).
	m := cfsm.New("mode_logic")
	m.AttachInput(s.RoadClass)
	m.AttachInput(s.ModeButton)
	m.AttachInput(s.SpeedSample)
	m.AttachOutput(s.DampCmd)
	mode := m.AddState("drv_mode", 3, 0)
	speed := m.AddState("veh_speed", 0, 0)
	road := m.AddState("cur_road", 0, 0)
	pRC := m.Present(s.RoadClass)
	pMB := m.Present(s.ModeButton)
	pSP := m.Present(s.SpeedSample)
	selMode := m.Sel(mode)
	fast := m.Pred(expr.Ge(expr.V("veh_speed"), expr.C(110)))
	// cmd = min(7, road*2 + sportBias + fastBias)
	cmd := func(bias int64) expr.Expr {
		return expr.Min(expr.C(7),
			expr.Add(expr.Mul(expr.V("cur_road"), expr.C(2)), expr.C(bias)))
	}
	cmdFast := func(bias int64) expr.Expr { return cmd(bias + 1) }
	m.AddTransition([]cfsm.Cond{on(pMB, 1)},
		m.Assign(mode, expr.Min(expr.V("?mode_button"), expr.C(2))))
	m.AddTransition([]cfsm.Cond{on(pMB, 0), on(pSP, 1)},
		m.Assign(speed, expr.V("?speed_sample")))
	// New road classification triggers a command update; comfort
	// mode (1) soft bias 0, auto (0) bias 1, sport (2) bias 3.
	bias := map[int]int64{0: 1, 1: 0, 2: 3}
	for md := 0; md < 3; md++ {
		m.AddTransition(
			[]cfsm.Cond{on(pMB, 0), on(pSP, 0), on(pRC, 1), on(selMode, md), on(fast, 0)},
			m.EmitV(s.DampCmd, cmd(bias[md])), m.Assign(road, expr.V("?road_class")))
		m.AddTransition(
			[]cfsm.Cond{on(pMB, 0), on(pSP, 0), on(pRC, 1), on(selMode, md), on(fast, 1)},
			m.EmitV(s.DampCmd, cmdFast(bias[md])), m.Assign(road, expr.V("?road_class")))
	}
	s.ModeLogic = m

	// Actuator driver: translate the command into the solenoid code
	// (gray-coded), report a fault if the command is out of range.
	a := cfsm.New("actuator")
	a.AttachInput(s.DampCmd)
	a.AttachOutput(s.Solenoid)
	a.AttachOutput(s.Fault)
	pC := a.Present(s.DampCmd)
	ok := a.Pred(expr.Le(expr.V("?damp_cmd"), expr.C(7)))
	gray := expr.NewBin(expr.OpBitXor, expr.V("?damp_cmd"),
		expr.NewBin(expr.OpShr, expr.V("?damp_cmd"), expr.C(1)))
	a.AddTransition([]cfsm.Cond{on(pC, 1), on(ok, 1)},
		a.EmitV(s.Solenoid, gray))
	a.AddTransition([]cfsm.Cond{on(pC, 1), on(ok, 0)},
		a.EmitV(s.Fault, expr.C(3)))
	s.Actuator = a

	// Watchdog: an actuator acknowledge must arrive at least every 8
	// ticks once the first command was seen; otherwise trip failsafe.
	w := cfsm.New("watchdog")
	w.AttachInput(s.Tick)
	w.AttachInput(s.ActAck)
	w.AttachOutput(s.FailSafe)
	w.AttachOutput(s.Fault)
	armed := w.AddState("wd_armed", 2, 0)
	miss := w.AddState("wd_miss", 0, 0)
	pT := w.Present(s.Tick)
	pAck := w.Present(s.ActAck)
	selArm := w.Sel(armed)
	over := w.Pred(expr.Ge(expr.V("wd_miss"), expr.C(8)))
	w.AddTransition([]cfsm.Cond{on(pAck, 1)},
		w.Assign(miss, expr.C(0)), w.Assign(armed, expr.C(1)))
	w.AddTransition([]cfsm.Cond{on(pAck, 0), on(pT, 1), on(selArm, 1), on(over, 1)},
		w.Emit(s.FailSafe), w.EmitV(s.Fault, expr.C(7)), w.Assign(armed, expr.C(0)))
	w.AddTransition([]cfsm.Cond{on(pAck, 0), on(pT, 1), on(selArm, 1), on(over, 0)},
		w.Assign(miss, expr.Add(expr.V("wd_miss"), expr.C(1))))
	s.Watchdog = w

	// Diagnostic collector: latch the highest fault code seen and
	// report it.
	dg := cfsm.New("diag")
	dg.AttachInput(s.Fault)
	dg.AttachOutput(s.DiagCode)
	code := dg.AddState("diag_latch", 0, 0)
	pF := dg.Present(s.Fault)
	worst := expr.Max(expr.V("diag_latch"), expr.V("?fault"))
	dg.AddTransition([]cfsm.Cond{on(pF, 1)},
		dg.EmitV(s.DiagCode, worst), dg.Assign(code, worst))
	s.Diag = dg

	for _, m := range s.Modules() {
		if err := n.Add(m); err != nil {
			panic("designs: " + err.Error())
		}
	}
	if err := n.Validate(); err != nil {
		panic("designs: " + err.Error())
	}
	return s
}

// LatencyBudgetCycles is the hard sensor-to-actuator latency bound of
// the shock-absorber specification, in CPU cycles of the HC11-class
// target (12 ms at 2 MHz; the paper states the requirement in time
// units and both implementations satisfied it).
const LatencyBudgetCycles = 24000
