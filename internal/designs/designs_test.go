package designs

import (
	"testing"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/sim"
	"polis/internal/vm"
)

func TestDashboardValid(t *testing.T) {
	d := NewDashboard()
	if err := d.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Modules()) != 9 {
		t.Errorf("module count %d", len(d.Modules()))
	}
	for _, m := range d.Modules() {
		if err := m.CheckDeterministic(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	// The belt <-> timer feedback loop is legal in the GALS model
	// (events are buffered); only the synchronous composition needs
	// acyclicity, so the full dashboard must NOT topo-order.
	if _, err := d.Net.TopoOrder(); err == nil {
		t.Error("expected the belt/timer feedback loop to be reported")
	}
}

func TestDashboardModulesSynthesize(t *testing.T) {
	d := NewDashboard()
	for _, m := range d.Modules() {
		r, err := cfsm.BuildReactive(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		g, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := g.CheckWellFormed(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		p, err := codegen.Assemble(g, codegen.NewSignalMap(m), codegen.Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if vm.HC11().CodeSize(p) < 8 {
			t.Errorf("%s: implausibly small routine", m.Name)
		}
	}
}

func TestBeltScenario(t *testing.T) {
	d := NewDashboard()
	cfg := rtos.DefaultConfig()
	opts := sim.Options{
		Cfg:      cfg,
		Mode:     sim.VMExact,
		Profile:  vm.HC11(),
		Ordering: sgraph.OrderSiftAfterSupport,
	}
	// Key on at 1000; ticks every 10k cycles (100 ms at calibration
	// scale); no belt: alarm must sound after 50 ticks and stop after
	// 150.
	stim := []sim.Stimulus{{Time: 1000, Signal: d.KeyOn}}
	stim = append(stim, sim.PeriodicStimuli(d.Tick, 2000, 10000, 3000000, nil)...)
	res, err := sim.Run(d.Net, stim, 3200000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.CountEmissions(res.Trace, d.AlarmOn); got != 1 {
		t.Errorf("alarm_on emitted %d times, want 1", got)
	}
	if got := sim.CountEmissions(res.Trace, d.AlarmOff); got != 1 {
		t.Errorf("alarm_off emitted %d times, want 1", got)
	}
	var onAt, offAt int64 = -1, -1
	for _, e := range res.Trace {
		if e.Signal == d.AlarmOn && e.From == "belt" {
			onAt = e.Time
		}
		if e.Signal == d.AlarmOff && e.From == "belt" {
			offAt = e.Time
		}
	}
	if onAt < 0 || offAt < onAt {
		t.Fatalf("alarm times: on=%d off=%d", onAt, offAt)
	}
	// ~100 ticks between on and off (1,000,000 cycles).
	if d := offAt - onAt; d < 900000 || d > 1100000 {
		t.Errorf("alarm duration %d cycles, want ~1000000", d)
	}
}

func TestBeltFastenedSilencesAlarm(t *testing.T) {
	d := NewDashboard()
	opts := sim.Options{
		Cfg:      rtos.DefaultConfig(),
		Mode:     sim.Behavioral,
		Profile:  vm.HC11(),
		Ordering: sgraph.OrderSiftAfterSupport,
	}
	stim := []sim.Stimulus{
		{Time: 1000, Signal: d.KeyOn},
		{Time: 50000, Signal: d.BeltOn}, // fastened before 5 s
	}
	stim = append(stim, sim.PeriodicStimuli(d.Tick, 2000, 10000, 2000000, nil)...)
	res, err := sim.Run(d.Net, stim, 2100000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.CountEmissions(res.Trace, d.AlarmOn); got != 0 {
		t.Errorf("alarm must stay silent, emitted %d", got)
	}
}

func TestSpeedChain(t *testing.T) {
	d := NewDashboard()
	opts := sim.Options{
		Cfg:      rtos.DefaultConfig(),
		Mode:     sim.VMExact,
		Profile:  vm.HC11(),
		Ordering: sgraph.OrderSiftAfterSupport,
	}
	// Wheel period 65 ms -> raw speed ~ 99 km/h; steady state of the
	// smoothing filter converges to ~99; duty ~ 99*255/220 ~ 114.
	stim := sim.PeriodicStimuli(d.WheelPulse, 1000, 20000, 400000,
		func(int) int64 { return 65 })
	res, err := sim.Run(d.Net, stim, 500000, opts)
	if err != nil {
		t.Fatal(err)
	}
	var lastDuty int64 = -1
	for _, e := range res.Trace {
		if e.Signal == d.SpeedDuty {
			lastDuty = e.Value
		}
	}
	if lastDuty < 100 || lastDuty > 120 {
		t.Errorf("speed duty %d, want ~114", lastDuty)
	}
}

func TestShockAbsorberValid(t *testing.T) {
	s := NewShockAbsorber()
	if err := s.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range s.Modules() {
		if err := m.CheckDeterministic(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if _, err := s.Net.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestShockAbsorberChainAndLatency(t *testing.T) {
	s := NewShockAbsorber()
	opts := sim.Options{
		Cfg:      rtos.DefaultConfig(),
		Mode:     sim.VMExact,
		Profile:  vm.HC11(),
		Ordering: sgraph.OrderSiftAfterSupport,
	}
	var stim []sim.Stimulus
	// Rough road: large acceleration samples every 2 ms (4000 cycles).
	stim = append(stim, sim.PeriodicStimuli(s.AccelSample, 1000, 4000, 900000,
		func(i int) int64 { return int64(80 + (i%5)*10) })...)
	stim = append(stim, sim.Stimulus{Time: 500, Signal: s.SpeedSample, Value: 130})
	res, err := sim.Run(s.Net, stim, 1000000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.CountEmissions(res.Trace, s.Solenoid); got == 0 {
		t.Fatal("no solenoid commands")
	}
	// Hard command must be issued on a very rough road at speed.
	var maxCmd int64 = -1
	for _, e := range res.Trace {
		if e.Signal == s.Solenoid && e.Value > maxCmd {
			maxCmd = e.Value
		}
	}
	if maxCmd < 4 {
		t.Errorf("max solenoid code %d, expected a hard setting", maxCmd)
	}
	lat := sim.MaxLatency(res.Trace, s.AccelSample, s.Solenoid)
	if lat < 0 {
		t.Fatal("no latency sample")
	}
	if lat > LatencyBudgetCycles {
		t.Errorf("sensor-to-actuator latency %d exceeds the %d-cycle budget",
			lat, LatencyBudgetCycles)
	}
}

func TestWatchdogTrips(t *testing.T) {
	s := NewShockAbsorber()
	opts := sim.Options{
		Cfg:      rtos.DefaultConfig(),
		Mode:     sim.Behavioral,
		Profile:  vm.HC11(),
		Ordering: sgraph.OrderSiftAfterSupport,
	}
	var stim []sim.Stimulus
	stim = append(stim, sim.Stimulus{Time: 100, Signal: s.ActAck}) // arm
	stim = append(stim, sim.PeriodicStimuli(s.Tick, 1000, 5000, 200000, nil)...)
	res, err := sim.Run(s.Net, stim, 300000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.CountEmissions(res.Trace, s.FailSafe); got != 1 {
		t.Errorf("failsafe emitted %d times, want exactly 1", got)
	}
	// The diagnostic collector must report the watchdog code.
	var code int64 = -1
	for _, e := range res.Trace {
		if e.Signal == s.DiagCode {
			code = e.Value
		}
	}
	if code != 7 {
		t.Errorf("diag code %d, want 7", code)
	}
}

func TestBeltSubnetComposes(t *testing.T) {
	n, _ := BeltSubnet()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Machines) != 3 {
		t.Fatalf("machines: %d", len(n.Machines))
	}
}
