// Package designs provides the benchmark systems of the paper's
// experimental section: a car dashboard controller (the computational
// chain from the wheel and engine speed sensors to the pulse-width
// modulated outputs controlling the gauges, Section V-A) and a
// shock-absorber controller (Section V-B). The original Magneti
// Marelli specifications are proprietary; these are functionally
// equivalent controllers built from the behaviours the paper names,
// with module inventories sized like Table I's.
package designs

import (
	"polis/internal/cfsm"
	"polis/internal/expr"
)

// Dashboard bundles the dashboard network and handles to the signals
// experiments inject or observe.
type Dashboard struct {
	Net *cfsm.Network

	// Environment inputs.
	KeyOn      *cfsm.Signal
	KeyOff     *cfsm.Signal
	BeltOn     *cfsm.Signal
	Tick       *cfsm.Signal // 100 ms timebase
	WheelPulse *cfsm.Signal // valued: period of one wheel turn (ms)
	RPMPulse   *cfsm.Signal // valued: period of one crank turn (ms)
	FuelSample *cfsm.Signal // valued: tank level sample (percent)
	PWMClock   *cfsm.Signal // fast PWM timebase

	// Observable outputs.
	AlarmOn   *cfsm.Signal
	AlarmOff  *cfsm.Signal
	Speed     *cfsm.Signal
	SpeedDuty *cfsm.Signal
	OdoInc    *cfsm.Signal
	RPM       *cfsm.Signal
	RPMDuty   *cfsm.Signal
	OverRev   *cfsm.Signal
	FuelDuty  *cfsm.Signal
	LowFuel   *cfsm.Signal
	PWMPin    *cfsm.Signal

	// Internal signals the sub-experiments reuse.
	StartTimer *cfsm.Signal
	End5       *cfsm.Signal
	End10      *cfsm.Signal

	Belt      *cfsm.CFSM
	Timer     *cfsm.CFSM
	SpeedF    *cfsm.CFSM
	Odometer  *cfsm.CFSM
	SpeedDisp *cfsm.CFSM
	EngineMon *cfsm.CFSM
	TachoDisp *cfsm.CFSM
	Fuel      *cfsm.CFSM
	PWM       *cfsm.CFSM
}

// Modules lists the dashboard CFSMs in Table I order.
func (d *Dashboard) Modules() []*cfsm.CFSM {
	return []*cfsm.CFSM{
		d.Belt, d.Timer, d.SpeedF, d.Odometer, d.SpeedDisp,
		d.EngineMon, d.TachoDisp, d.Fuel, d.PWM,
	}
}

// NewDashboard builds the dashboard controller network.
func NewDashboard() *Dashboard {
	n := cfsm.NewNetwork("dashboard")
	d := &Dashboard{Net: n}

	d.KeyOn = n.NewSignal("key_on", true)
	d.KeyOff = n.NewSignal("key_off", true)
	d.BeltOn = n.NewSignal("belt_on", true)
	d.Tick = n.NewSignal("tick", true)
	d.WheelPulse = n.NewSignal("wheel_pulse", false)
	d.RPMPulse = n.NewSignal("rpm_pulse", false)
	d.FuelSample = n.NewSignal("fuel_sample", false)
	d.PWMClock = n.NewSignal("pwm_clock", true)

	d.AlarmOn = n.NewSignal("alarm_on", true)
	d.AlarmOff = n.NewSignal("alarm_off", true)
	d.Speed = n.NewSignal("speed", false)
	d.SpeedDuty = n.NewSignal("speed_duty", false)
	d.OdoInc = n.NewSignal("odo_inc", true)
	d.RPM = n.NewSignal("rpm", false)
	d.RPMDuty = n.NewSignal("rpm_duty", false)
	d.OverRev = n.NewSignal("overrev", true)
	d.FuelDuty = n.NewSignal("fuel_duty", false)
	d.LowFuel = n.NewSignal("low_fuel", true)
	d.PWMPin = n.NewSignal("pwm_pin", false)

	d.StartTimer = n.NewSignal("start_timer", true)
	d.End5 = n.NewSignal("end_5", true)
	d.End10 = n.NewSignal("end_10", true)

	d.Belt = beltCFSM(d)
	d.Timer = timerCFSM(d)
	d.SpeedF = speedFilterCFSM(d)
	d.Odometer = odometerCFSM(d)
	d.SpeedDisp = speedDisplayCFSM(d)
	d.EngineMon = engineMonCFSM(d)
	d.TachoDisp = tachoDisplayCFSM(d)
	d.Fuel = fuelCFSM(d)
	d.PWM = pwmCFSM(d)
	for _, m := range d.Modules() {
		if err := n.Add(m); err != nil {
			panic("designs: " + err.Error())
		}
	}
	if err := n.Validate(); err != nil {
		panic("designs: " + err.Error())
	}
	return d
}

// beltCFSM is the classical seat-belt alarm controller: when the key
// turns on, a timer starts; if the belt is not fastened within 5
// seconds the alarm sounds, and it stops after 10 more seconds, or
// when the belt is fastened or the key turned off.
func beltCFSM(d *Dashboard) *cfsm.CFSM {
	c := cfsm.New("belt")
	c.AttachInput(d.KeyOn)
	c.AttachInput(d.KeyOff)
	c.AttachInput(d.BeltOn)
	c.AttachInput(d.End5)
	c.AttachInput(d.End10)
	c.AttachOutput(d.StartTimer)
	c.AttachOutput(d.AlarmOn)
	c.AttachOutput(d.AlarmOff)

	// 0=off, 1=waiting, 2=alarm
	st := c.AddState("belt_st", 3, 0)
	sel := c.Sel(st)
	pKeyOn := c.Present(d.KeyOn)
	pKeyOff := c.Present(d.KeyOff)
	pBelt := c.Present(d.BeltOn)
	p5 := c.Present(d.End5)
	p10 := c.Present(d.End10)

	on := cfsm.On
	c.AddTransition([]cfsm.Cond{on(sel, 0), on(pKeyOn, 1)},
		c.Emit(d.StartTimer), c.Assign(st, expr.C(1)))
	// Waiting: key off or belt fastened cancels; end_5 raises alarm.
	c.AddTransition([]cfsm.Cond{on(sel, 1), on(pKeyOff, 1)},
		c.Assign(st, expr.C(0)))
	c.AddTransition([]cfsm.Cond{on(sel, 1), on(pKeyOff, 0), on(pBelt, 1)},
		c.Assign(st, expr.C(0)))
	c.AddTransition([]cfsm.Cond{on(sel, 1), on(pKeyOff, 0), on(pBelt, 0), on(p5, 1)},
		c.Emit(d.AlarmOn), c.Assign(st, expr.C(2)))
	// Alarming: any of key off, belt on, end_10 stops the alarm.
	c.AddTransition([]cfsm.Cond{on(sel, 2), on(pKeyOff, 1)},
		c.Emit(d.AlarmOff), c.Assign(st, expr.C(0)))
	c.AddTransition([]cfsm.Cond{on(sel, 2), on(pKeyOff, 0), on(pBelt, 1)},
		c.Emit(d.AlarmOff), c.Assign(st, expr.C(0)))
	c.AddTransition([]cfsm.Cond{on(sel, 2), on(pKeyOff, 0), on(pBelt, 0), on(p10, 1)},
		c.Emit(d.AlarmOff), c.Assign(st, expr.C(0)))
	return c
}

// timerCFSM counts 100 ms ticks after start_timer and emits end_5 at
// 5 s and end_10 at 15 s.
func timerCFSM(d *Dashboard) *cfsm.CFSM {
	return timerCFSMWith(d, d.StartTimer)
}

// timerCFSMWith lets the Table III sub-network trigger the timer from
// a primary input, which removes the belt->timer feedback edge and
// makes the sub-network synchronously composable.
func timerCFSMWith(d *Dashboard, start *cfsm.Signal) *cfsm.CFSM {
	c := cfsm.New("timer")
	c.AttachInput(start)
	c.AttachInput(d.Tick)
	c.AttachOutput(d.End5)
	c.AttachOutput(d.End10)

	counting := c.AddState("tmr_on", 2, 0)
	cnt := c.AddState("tmr_cnt", 0, 0)
	sel := c.Sel(counting)
	pStart := c.Present(start)
	pTick := c.Present(d.Tick)
	at50 := c.Pred(expr.Eq(expr.V("tmr_cnt"), expr.C(49)))
	at150 := c.Pred(expr.Eq(expr.V("tmr_cnt"), expr.C(149)))
	c.MarkExclusive(at50, at150)

	on := cfsm.On
	c.AddTransition([]cfsm.Cond{on(pStart, 1)},
		c.Assign(cnt, expr.C(0)), c.Assign(counting, expr.C(1)))
	c.AddTransition([]cfsm.Cond{on(pStart, 0), on(pTick, 1), on(sel, 1), on(at50, 1)},
		c.Emit(d.End5), c.Assign(cnt, expr.Add(expr.V("tmr_cnt"), expr.C(1))))
	c.AddTransition([]cfsm.Cond{on(pStart, 0), on(pTick, 1), on(sel, 1), on(at150, 1)},
		c.Emit(d.End10), c.Assign(counting, expr.C(0)))
	c.AddTransition([]cfsm.Cond{on(pStart, 0), on(pTick, 1), on(sel, 1), on(at50, 0), on(at150, 0)},
		c.Assign(cnt, expr.Add(expr.V("tmr_cnt"), expr.C(1))))
	return c
}

// speedFilterCFSM converts the wheel-pulse period (ms per revolution)
// into a speed value (km/h), with a two-sample smoothing filter: the
// data-dominated division the paper's estimation tables include.
func speedFilterCFSM(d *Dashboard) *cfsm.CFSM {
	c := cfsm.New("speed_filter")
	c.AttachInput(d.WheelPulse)
	c.AttachOutput(d.Speed)
	last := c.AddState("spd_last", 0, 0)
	p := c.Present(d.WheelPulse)
	// speed = 6480 / period(ms) for a 1.8 m wheel circumference;
	// smoothed = (last + raw) / 2.
	raw := expr.Div(expr.C(6480), expr.V("?wheel_pulse"))
	smooth := expr.Div(expr.Add(expr.V("spd_last"), raw), expr.C(2))
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1)},
		c.EmitV(d.Speed, smooth), c.Assign(last, smooth))
	return c
}

// odometerCFSM counts wheel pulses and emits odo_inc every 100
// revolutions (one tenth of a mile with the chosen wheel).
func odometerCFSM(d *Dashboard) *cfsm.CFSM {
	c := cfsm.New("odometer")
	c.AttachInput(d.WheelPulse)
	c.AttachOutput(d.OdoInc)
	cnt := c.AddState("odo_cnt", 0, 0)
	p := c.Present(d.WheelPulse)
	wrap := c.Pred(expr.Ge(expr.V("odo_cnt"), expr.C(99)))
	on := cfsm.On
	c.AddTransition([]cfsm.Cond{on(p, 1), on(wrap, 1)},
		c.Emit(d.OdoInc), c.Assign(cnt, expr.C(0)))
	c.AddTransition([]cfsm.Cond{on(p, 1), on(wrap, 0)},
		c.Assign(cnt, expr.Add(expr.V("odo_cnt"), expr.C(1))))
	return c
}

// speedDisplayCFSM maps a speed value onto the gauge duty cycle
// (0..255 for 0..220 km/h, clamped).
func speedDisplayCFSM(d *Dashboard) *cfsm.CFSM {
	c := cfsm.New("speedo")
	c.AttachInput(d.Speed)
	c.AttachOutput(d.SpeedDuty)
	p := c.Present(d.Speed)
	duty := expr.Div(expr.Mul(expr.Min(expr.V("?speed"), expr.C(220)), expr.C(255)), expr.C(220))
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1)}, c.EmitV(d.SpeedDuty, duty))
	return c
}

// engineMonCFSM converts crank-pulse periods to RPM and raises the
// over-rev alarm above 6500 rpm (with hysteresis through a state bit).
func engineMonCFSM(d *Dashboard) *cfsm.CFSM {
	c := cfsm.New("engine_mon")
	c.AttachInput(d.RPMPulse)
	c.AttachOutput(d.RPM)
	c.AttachOutput(d.OverRev)
	hot := c.AddState("eng_hot", 2, 0)
	p := c.Present(d.RPMPulse)
	sel := c.Sel(hot)
	rpm := expr.Div(expr.C(60000), expr.V("?rpm_pulse"))
	over := c.Pred(expr.Gt(rpm, expr.C(6500)))
	cool := c.Pred(expr.Lt(rpm, expr.C(6000)))
	on := cfsm.On
	c.AddTransition([]cfsm.Cond{on(p, 1), on(sel, 0), on(over, 1)},
		c.EmitV(d.RPM, rpm), c.Emit(d.OverRev), c.Assign(hot, expr.C(1)))
	c.AddTransition([]cfsm.Cond{on(p, 1), on(sel, 0), on(over, 0)},
		c.EmitV(d.RPM, rpm))
	c.AddTransition([]cfsm.Cond{on(p, 1), on(sel, 1), on(cool, 1)},
		c.EmitV(d.RPM, rpm), c.Assign(hot, expr.C(0)))
	c.AddTransition([]cfsm.Cond{on(p, 1), on(sel, 1), on(cool, 0)},
		c.EmitV(d.RPM, rpm))
	return c
}

// tachoDisplayCFSM maps RPM onto the tachometer duty cycle.
func tachoDisplayCFSM(d *Dashboard) *cfsm.CFSM {
	c := cfsm.New("tacho")
	c.AttachInput(d.RPM)
	c.AttachOutput(d.RPMDuty)
	p := c.Present(d.RPM)
	duty := expr.Div(expr.Mul(expr.Min(expr.V("?rpm"), expr.C(8000)), expr.C(255)), expr.C(8000))
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1)}, c.EmitV(d.RPMDuty, duty))
	return c
}

// fuelCFSM low-pass filters tank samples, drives the fuel gauge and
// raises the low-fuel lamp under 10 percent (with hysteresis).
func fuelCFSM(d *Dashboard) *cfsm.CFSM {
	c := cfsm.New("fuel")
	c.AttachInput(d.FuelSample)
	c.AttachOutput(d.FuelDuty)
	c.AttachOutput(d.LowFuel)
	lvl := c.AddState("fuel_lvl", 0, 50)
	warned := c.AddState("fuel_warn", 2, 0)
	p := c.Present(d.FuelSample)
	sel := c.Sel(warned)
	filt := expr.Div(expr.Add(expr.Mul(expr.V("fuel_lvl"), expr.C(3)), expr.V("?fuel_sample")), expr.C(4))
	low := c.Pred(expr.Lt(filt, expr.C(10)))
	duty := expr.Div(expr.Mul(filt, expr.C(255)), expr.C(100))
	on := cfsm.On
	c.AddTransition([]cfsm.Cond{on(p, 1), on(sel, 0), on(low, 1)},
		c.EmitV(d.FuelDuty, duty), c.Emit(d.LowFuel), c.Assign(lvl, filt), c.Assign(warned, expr.C(1)))
	c.AddTransition([]cfsm.Cond{on(p, 1), on(sel, 0), on(low, 0)},
		c.EmitV(d.FuelDuty, duty), c.Assign(lvl, filt))
	c.AddTransition([]cfsm.Cond{on(p, 1), on(sel, 1), on(low, 0)},
		c.EmitV(d.FuelDuty, duty), c.Assign(lvl, filt), c.Assign(warned, expr.C(0)))
	c.AddTransition([]cfsm.Cond{on(p, 1), on(sel, 1), on(low, 1)},
		c.EmitV(d.FuelDuty, duty), c.Assign(lvl, filt))
	return c
}

// pwmCFSM generates the pulse-width modulated gauge drive: an 8-bit
// counter advanced by the PWM clock, compared against the latched
// duty value.
func pwmCFSM(d *Dashboard) *cfsm.CFSM {
	c := cfsm.New("pwm")
	c.AttachInput(d.SpeedDuty)
	c.AttachInput(d.PWMClock)
	c.AttachOutput(d.PWMPin)
	duty := c.AddState("pwm_duty", 0, 0)
	cnt := c.AddState("pwm_cnt", 0, 0)
	pDuty := c.Present(d.SpeedDuty)
	pClk := c.Present(d.PWMClock)
	nextCnt := expr.Mod(expr.Add(expr.V("pwm_cnt"), expr.C(1)), expr.C(256))
	below := c.Pred(expr.Lt(expr.V("pwm_cnt"), expr.V("pwm_duty")))
	on := cfsm.On
	c.AddTransition([]cfsm.Cond{on(pDuty, 1)},
		c.Assign(duty, expr.V("?speed_duty")))
	c.AddTransition([]cfsm.Cond{on(pDuty, 0), on(pClk, 1), on(below, 1)},
		c.EmitV(d.PWMPin, expr.C(1)), c.Assign(cnt, nextCnt))
	c.AddTransition([]cfsm.Cond{on(pDuty, 0), on(pClk, 1), on(below, 0)},
		c.EmitV(d.PWMPin, expr.C(0)), c.Assign(cnt, nextCnt))
	return c
}

// BeltSubnet returns a three-machine sub-network (belt + timer +
// buzzer) for the Table III granularity comparison. The timer here
// starts directly on key_on, so the sub-network is acyclic and the
// synchronous single-FSM composition applies (the full dashboard's
// belt->timer feedback is a buffered GALS loop that the zero-delay
// product cannot express); the alarm events become internal signals
// consumed by the buzzer driver.
func BeltSubnet() (*cfsm.Network, *Dashboard) {
	d := &Dashboard{}
	n := cfsm.NewNetwork("belt_chain")
	d.Net = n
	d.KeyOn = n.NewSignal("key_on", true)
	d.KeyOff = n.NewSignal("key_off", true)
	d.BeltOn = n.NewSignal("belt_on", true)
	d.Tick = n.NewSignal("tick", true)
	d.AlarmOn = n.NewSignal("alarm_on", true)
	d.AlarmOff = n.NewSignal("alarm_off", true)
	d.StartTimer = n.NewSignal("start_timer", true) // belt output, unread here
	d.End5 = n.NewSignal("end_5", true)
	d.End10 = n.NewSignal("end_10", true)
	d.PWMPin = n.NewSignal("buzz", true)
	d.Belt = beltCFSM(d)
	d.Timer = timerCFSMWith(d, d.KeyOn)
	d.PWM = buzzerCFSM(d)
	for _, m := range []*cfsm.CFSM{d.Belt, d.Timer, d.PWM} {
		if err := n.Add(m); err != nil {
			panic(err)
		}
	}
	return n, d
}

// buzzerCFSM pulses the buzzer on every other tick while the alarm is
// active.
func buzzerCFSM(d *Dashboard) *cfsm.CFSM {
	c := cfsm.New("buzzer")
	c.AttachInput(d.AlarmOn)
	c.AttachInput(d.AlarmOff)
	c.AttachInput(d.Tick)
	c.AttachOutput(d.PWMPin)
	bz := c.AddState("bz_on", 2, 0)
	ph := c.AddState("bz_ph", 2, 0)
	pOn := c.Present(d.AlarmOn)
	pOff := c.Present(d.AlarmOff)
	pT := c.Present(d.Tick)
	selBz := c.Sel(bz)
	selPh := c.Sel(ph)
	on := cfsm.On
	c.AddTransition([]cfsm.Cond{on(pOn, 1)}, c.Assign(bz, expr.C(1)))
	c.AddTransition([]cfsm.Cond{on(pOn, 0), on(pOff, 1)}, c.Assign(bz, expr.C(0)))
	c.AddTransition([]cfsm.Cond{on(pOn, 0), on(pOff, 0), on(pT, 1), on(selBz, 1), on(selPh, 0)},
		c.Emit(d.PWMPin), c.Assign(ph, expr.C(1)))
	c.AddTransition([]cfsm.Cond{on(pOn, 0), on(pOff, 0), on(pT, 1), on(selBz, 1), on(selPh, 1)},
		c.Assign(ph, expr.C(0)))
	return c
}

// SpeedSubnet returns the acyclic three-machine speed chain
// (speed_filter -> speedo -> pwm) for composition experiments.
func SpeedSubnet() (*cfsm.Network, *Dashboard) {
	d := &Dashboard{}
	n := cfsm.NewNetwork("speed_chain")
	d.Net = n
	d.WheelPulse = n.NewSignal("wheel_pulse", false)
	d.PWMClock = n.NewSignal("pwm_clock", true)
	d.Speed = n.NewSignal("speed", false)
	d.SpeedDuty = n.NewSignal("speed_duty", false)
	d.PWMPin = n.NewSignal("pwm_pin", false)
	d.SpeedF = speedFilterCFSM(d)
	d.SpeedDisp = speedDisplayCFSM(d)
	d.PWM = pwmCFSM(d)
	for _, m := range []*cfsm.CFSM{d.SpeedF, d.SpeedDisp, d.PWM} {
		if err := n.Add(m); err != nil {
			panic(err)
		}
	}
	return n, d
}
