package polis

import (
	"strings"
	"testing"

	"polis/internal/designs"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

const fig1 = `
module simple:
input c : integer;
output y;
var a : integer in
loop
  await c;
  if a = ?c then a := 0; emit y;
  else a := a + 1;
  end if
end loop
end var
end module
`

func TestSynthesizeSourceFig1(t *testing.T) {
	art, err := SynthesizeSource(fig1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(art.C, "simple_react") {
		t.Error("C output missing routine")
	}
	if art.CodeSize <= 0 || art.Measured.Max <= 0 {
		t.Errorf("degenerate artifacts: %+v", art)
	}
	if art.Estimate.MaxCycles < art.Estimate.MinCycles {
		t.Error("estimate bounds inverted")
	}
	rep := art.Report(nil)
	if !strings.Contains(rep, "CFSM simple") {
		t.Errorf("report malformed:\n%s", rep)
	}
	if !strings.Contains(art.Listing, "simple_react") {
		t.Error("listing missing entry label")
	}
}

func TestSynthesizeDashboardModules(t *testing.T) {
	d := designs.NewDashboard()
	for _, m := range d.Modules() {
		for _, prof := range []*vm.Profile{vm.HC11(), vm.R3K()} {
			art, err := Synthesize(m, Options{Target: prof})
			if err != nil {
				t.Fatalf("%s on %s: %v", m.Name, prof.Name, err)
			}
			if art.CodeSize <= 0 {
				t.Errorf("%s: no code", m.Name)
			}
		}
	}
}

func TestSynthesizeOrderingOption(t *testing.T) {
	d := designs.NewDashboard()
	optDefault, err := Synthesize(d.Fuel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	optNaive, err := Synthesize(d.Fuel, Options{Ordering: sgraph.OrderNaive})
	if err != nil {
		t.Fatal(err)
	}
	if optDefault.CodeSize > optNaive.CodeSize {
		t.Errorf("default (sifted) %d B should not exceed naive %d B",
			optDefault.CodeSize, optNaive.CodeSize)
	}
}

func TestGenerateRTOSAPI(t *testing.T) {
	s := designs.NewShockAbsorber()
	src, size, err := GenerateRTOS(s.Net, rtos.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "polis_scheduler") || !strings.Contains(src, "accel_filter_react") {
		t.Error("RTOS source incomplete")
	}
	if size.CodeBytes <= 0 {
		t.Error("RTOS size missing")
	}
}

func TestSynthesizeSourceErrors(t *testing.T) {
	if _, err := SynthesizeSource("module broken", Options{}); err == nil {
		t.Error("parse error must propagate")
	}
	bad := `
module bad:
input x;
var a : integer in
await x;
loop
  a := a + 1;
end loop
end var
end module
`
	if _, err := SynthesizeSource(bad, Options{}); err == nil {
		t.Error("instantaneous loop must propagate")
	}
}
