package polis

// Sifting regression gate: the final variable orders and the
// synthesized artifacts on a matrix of randcfsm-generated designs are
// pinned in testdata/sift_golden.json. The goldens were recorded with
// the pre-incremental (full-Size-per-swap) sifter, so any change to
// the reordering engine — per-level counters, interaction-matrix fast
// paths, lower-bound pruning — must reproduce its results byte for
// byte. Regenerate deliberately with `go test -run SiftGolden -update`.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/randcfsm"
	"polis/internal/sgraph"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// siftGoldenRecord pins one (seed, module, ordering) synthesis result.
type siftGoldenRecord struct {
	Seed     int64  `json:"seed"`
	Module   string `json:"module"`
	Ordering string `json:"ordering"`
	Order    string `json:"order"`  // final variable order, top to bottom
	ChiSize  int    `json:"chi"`    // BDD size of the characteristic function
	Vertices int    `json:"verts"`  // s-graph vertices
	CHash    string `json:"c_hash"` // sha256 of the generated C routine
}

func siftGoldenRun(t *testing.T) []siftGoldenRecord {
	t.Helper()
	orderings := []struct {
		name string
		ord  sgraph.Ordering
	}{
		{"inputs-first", sgraph.OrderSiftInputsFirst},
		{"after-support", sgraph.OrderSiftAfterSupport},
	}
	var out []siftGoldenRecord
	for _, seed := range []int64{7, 19, 23, 101, 424242} {
		net, _, err := randcfsm.NewNetwork(rand.New(rand.NewSource(seed)), 4, randcfsm.Config{
			MaxInputs:      5,
			MaxOutputs:     4,
			MaxControlVars: 3,
			MaxDataVars:    3,
			MaxTransitions: 20,
			ValueRange:     6,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, mod := range net.Machines {
			for _, o := range orderings {
				r, err := cfsm.BuildReactive(mod)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, mod.Name, err)
				}
				if err := sgraph.ApplyOrdering(r, o.ord); err != nil {
					t.Fatalf("seed %d %s: %v", seed, mod.Name, err)
				}
				g, err := sgraph.FromChi(r)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, mod.Name, err)
				}
				m := r.Space.M
				order := ""
				for lvl, v := range m.Order() {
					if lvl > 0 {
						order += " "
					}
					order += m.VarName(v)
				}
				sum := sha256.Sum256([]byte(codegen.EmitC(g, codegen.Options{})))
				out = append(out, siftGoldenRecord{
					Seed:     seed,
					Module:   mod.Name,
					Ordering: o.name,
					Order:    order,
					ChiSize:  m.Size(r.Chi),
					Vertices: g.ComputeStats().Vertices,
					CHash:    hex.EncodeToString(sum[:]),
				})
			}
		}
	}
	return out
}

// TestSiftGoldenOrders asserts that sifting still produces exactly the
// orders and artifacts the pre-incremental sifter produced.
func TestSiftGoldenOrders(t *testing.T) {
	got := siftGoldenRun(t)
	path := filepath.Join("testdata", "sift_golden.json")
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d records)", path, len(got))
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to record): %v", err)
	}
	var want []siftGoldenRecord
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden has %d records, run produced %d", len(want), len(got))
	}
	mismatches := 0
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("record %d diverged from pre-change sifter:\n want %+v\n  got %+v", i, want[i], got[i])
			}
		}
	}
	if mismatches > 5 {
		t.Errorf("... and %d further mismatches", mismatches-5)
	}
}
