#!/bin/sh
# Benchmark harness for the BDD kernel / synthesis pipeline and the
# co-simulation engine. Each suite keeps its own dated history file:
#
#   suite "bdd"   ->  BENCH_bdd.json   (synthesis + BDD kernel)
#   suite "sim"   ->  BENCH_sim.json   (co-simulation throughput)
#   suite "synth" ->  BENCH_synth.json (sharded synthesis at scale)
#
# BENCH_SUITES overrides the suite list (e.g. BENCH_SUITES=synth).
#
#   ./bench.sh           smoke mode: run the key benchmarks once
#                        (-benchtime=1x) so CI catches bit-rot cheaply
#   ./bench.sh -full     measured mode: real benchtime; the results are
#                        parsed (ns/op, B/op, allocs/op and custom
#                        metrics such as peak-nodes or reactions/s) and
#                        APPENDED to the suite's history file as a new
#                        dated run, preserving prior runs
#   ./bench.sh -compare  measured mode, read-only: run the benchmarks
#                        and print a delta table against the most
#                        recent run recorded per suite, without
#                        touching the files (no benchstat dependency)
#   ./bench.sh -compare -fail-over <pct>
#                        as -compare, but additionally exit nonzero if
#                        any benchmark regressed on ns/op by more than
#                        <pct> percent versus the recorded run — an
#                        opt-in perf gate for CI (pick a generous
#                        threshold; shared runners are noisy)
#
# History files are arrays of run objects
#   [{"date":"YYYY-MM-DD","label":"<commit>","benchmarks":[{...},...]}]
# with one flat benchmark object per `go test -bench` line, so
# downstream tooling can diff runs without a Go dependency. Files from
# before the run-history format (a bare array of benchmark objects)
# are absorbed as a run labelled "legacy" on the next -full.
set -eu

SUITES="${BENCH_SUITES:-bdd sim synth}"

# run_benches SUITE honors an optional BENCHTIME override (any
# -benchtime value, e.g. "10ms" or "1x") so CI can bound a run's cost.
run_benches() {
    case "$1" in
    bdd)
        go test -run '^$' -bench 'BenchmarkTable2Orderings|BenchmarkSynthesizeNetwork|BenchmarkAblationReduce|BenchmarkCharFn' \
            -benchmem ${BENCHTIME:+-benchtime="$BENCHTIME"} .
        go test -run '^$' -bench . -benchmem ${BENCHTIME:+-benchtime="$BENCHTIME"} ./internal/bdd/
        ;;
    sim)
        go test -run '^$' -bench 'BenchmarkSimThroughput|BenchmarkSimSpecialization' \
            -benchmem ${BENCHTIME:+-benchtime="$BENCHTIME"} ./internal/sim/
        ;;
    synth)
        # The 1000-module cases take tens of seconds per iteration on
        # the 1-CPU CI box; -benchtime=1x (the smoke default) keeps
        # them bounded.
        go test -run '^$' -bench 'BenchmarkShardSynthesize' -timeout 30m \
            -benchmem ${BENCHTIME:+-benchtime="$BENCHTIME"} ./internal/shard/
        ;;
    esac
}

suite_out() {
    echo "BENCH_$1.json"
}

# parse_benches: stdin is `go test -bench` output; stdout is one JSON
# benchmark object per line (no surrounding brackets). Lines look like
#   BenchmarkName-8   123   4567 ns/op   89 B/op   1 allocs/op   42.0 peak-nodes
# Metric tokens come in (value, unit) pairs after the iteration count;
# units become object keys ("/" replaced to keep the keys
# shell-friendly downstream).
parse_benches() {
    awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    line = sprintf("{\"name\":\"%s\",\"iters\":%s", name, $2)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/%/, "pct", unit)
        line = line sprintf(",\"%s\":%s", unit, $i)
    }
    print line "}"
}'
}

# latest_run OUTFILE: print the benchmark-object lines of the newest
# run (or of the whole file when it predates the run-history format).
latest_run() {
    [ -f "$1" ] || return 0
    if grep -q '"benchmarks"' "$1"; then
        awk '
/"benchmarks"/ { n++; delete b; k = 0; next }
/"name"/       { s = $0; sub(/^[ \t]*/, "", s); sub(/,[ \t]*$/, "", s); b[k++] = s }
END            { for (i = 0; i < k; i++) print b[i] }' "$1"
    else
        awk '
/"name"/ { s = $0; sub(/^[ \t]*/, "", s); sub(/,[ \t]*$/, "", s); print s }' "$1"
    fi
}

# append_run OUTFILE NEWFILE: rewrite OUTFILE with every prior run
# followed by a new dated run holding NEWFILE's benchmark lines.
append_run() {
    out=$1
    new=$2
    date=$(date +%Y-%m-%d)
    label=$(git rev-parse --short HEAD 2>/dev/null || echo "worktree")
    prev=$(mktemp)
    if [ -f "$out" ] && grep -q '"benchmarks"' "$out"; then
        # Drop the final "]" of the runs array; keep everything else.
        awk 'NR > 1 { print last } { last = $0 } END { if (last != "]") print last }' "$out" |
            sed '$ s/}[ \t]*$/},/' >"$prev"
    elif [ -f "$out" ] && grep -q '"name"' "$out"; then
        # Legacy flat-array file: absorb it as one "legacy" run.
        {
            echo "["
            echo " {\"date\":\"unknown\",\"label\":\"legacy\",\"benchmarks\":["
            latest_run "$out" | sed 's/^/  /' | sed '$ ! s/$/,/'
            echo " ]},"
        } >"$prev"
    else
        echo "[" >"$prev"
    fi
    {
        cat "$prev"
        echo " {\"date\":\"$date\",\"label\":\"$label\",\"benchmarks\":["
        sed 's/^/  /' "$new" | sed '$ ! s/$/,/'
        echo " ]}"
        echo "]"
    } >"$out"
    rm -f "$prev"
    echo "wrote $out ($(grep -c '"name"' "$new") benchmark(s), $(grep -c '"benchmarks"' "$out") run(s))"
}

# compare OLDFILE NEWFILE: per-benchmark delta table on ns/op, B/op and
# allocs/op. Both inputs hold one benchmark object per line.
compare_runs() {
    awk '
function val(line, key,   m) {
    if (match(line, "\"" key "\":[0-9.]+")) {
        m = substr(line, RSTART, RLENGTH)
        sub(/^[^:]*:/, "", m)
        return m
    }
    return ""
}
function nm(line,   m) {
    match(line, /"name":"[^"]*"/)
    m = substr(line, RSTART + 8, RLENGTH - 9)
    return m
}
function delta(o, n) {
    if (o == "" || n == "" || o + 0 == 0) return "      -"
    return sprintf("%+6.1f%%", 100 * (n - o) / o)
}
NR == FNR { old[nm($0)] = $0; next }
{
    name = nm($0); o = old[name]
    printf "%-40s %12s %12s %8s %10s %10s %8s\n", name,
        val(o, "ns_per_op"), val($0, "ns_per_op"), delta(val(o, "ns_per_op"), val($0, "ns_per_op")),
        val(o, "B_per_op"), val($0, "B_per_op"), delta(val(o, "allocs_per_op"), val($0, "allocs_per_op"))
    seen[name] = 1
}
END {
    for (n in old) if (!(n in seen)) printf "%-40s %12s %12s\n", n, val(old[n], "ns_per_op"), "(gone)"
}' "$1" "$2"
}

# check_regressions OLDFILE NEWFILE PCT: exit 1 when any benchmark's
# ns/op regressed beyond PCT percent against the recorded run. New
# benchmarks (no old entry) never fail the gate.
check_regressions() {
    awk -v limit="$3" '
function val(line, key,   m) {
    if (match(line, "\"" key "\":[0-9.]+")) {
        m = substr(line, RSTART, RLENGTH)
        sub(/^[^:]*:/, "", m)
        return m
    }
    return ""
}
function nm(line,   m) {
    match(line, /"name":"[^"]*"/)
    return substr(line, RSTART + 8, RLENGTH - 9)
}
NR == FNR { old[nm($0)] = val($0, "ns_per_op"); next }
{
    name = nm($0); o = old[name]; n = val($0, "ns_per_op")
    if (o != "" && n != "" && o + 0 > 0) {
        pct = 100 * (n - o) / o
        if (pct > limit + 0) {
            printf "REGRESSION %s: %.0f -> %.0f ns/op (%+.1f%% > %s%%)\n", name, o, n, pct, limit
            bad = 1
        }
    }
}
END { exit bad }' "$1" "$2" || {
        echo "bench.sh: ns/op regression beyond ${3}% threshold" >&2
        return 1
    }
    echo "no ns/op regression beyond ${3}%"
}

case "${1:-}" in
"")
    for suite in $SUITES; do
        BENCHTIME=1x run_benches "$suite"
    done
    ;;
-full)
    for suite in $SUITES; do
        OUT=$(suite_out "$suite")
        TMP=$(mktemp) NEW=$(mktemp)
        run_benches "$suite" | tee "$TMP"
        parse_benches <"$TMP" >"$NEW"
        append_run "$OUT" "$NEW"
        rm -f "$TMP" "$NEW"
    done
    ;;
-compare)
    FAILOVER=
    if [ "${2:-}" = "-fail-over" ]; then
        FAILOVER=${3:?"-fail-over needs a percentage"}
    fi
    STATUS=0
    for suite in $SUITES; do
        OUT=$(suite_out "$suite")
        TMP=$(mktemp) NEW=$(mktemp) OLD=$(mktemp)
        latest_run "$OUT" >"$OLD"
        if [ ! -s "$OLD" ]; then
            echo "no prior run in $OUT; run ./bench.sh -full first (skipping $suite)" >&2
            rm -f "$TMP" "$NEW" "$OLD"
            continue
        fi
        run_benches "$suite" | tee "$TMP"
        parse_benches <"$TMP" >"$NEW"
        echo
        printf "%-40s %12s %12s %8s %10s %10s %8s\n" "$suite benchmark" "old ns/op" "new ns/op" delta "old B/op" "new B/op" allocs
        compare_runs "$OLD" "$NEW"
        if [ -n "$FAILOVER" ]; then
            check_regressions "$OLD" "$NEW" "$FAILOVER" || STATUS=1
        fi
        rm -f "$TMP" "$NEW" "$OLD"
    done
    exit $STATUS
    ;;
*)
    echo "usage: ./bench.sh [-full|-compare]" >&2
    exit 2
    ;;
esac
