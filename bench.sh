#!/bin/sh
# Benchmark harness for the BDD kernel and the synthesis pipeline.
#
#   ./bench.sh          smoke mode: run the key benchmarks once
#                       (-benchtime=1x) so CI catches bit-rot cheaply
#   ./bench.sh -full    measured mode: real benchtime, and the results
#                       are parsed into BENCH_bdd.json (ns/op, B/op,
#                       allocs/op and custom metrics such as peak-nodes)
#
# The JSON file is a flat array of objects, one per benchmark line, so
# downstream tooling can diff runs without a Go dependency.
set -eu

PATTERN='BenchmarkTable2Orderings|BenchmarkSynthesizeNetwork'

if [ "${1:-}" != "-full" ]; then
    go test -run '^$' -bench "$PATTERN" -benchmem -benchtime=1x .
    go test -run '^$' -bench . -benchmem -benchtime=1x ./internal/bdd/
    exit 0
fi

OUT=BENCH_bdd.json
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem . | tee -a "$TMP"
go test -run '^$' -bench . -benchmem ./internal/bdd/ | tee -a "$TMP"

# Parse `go test -bench` output lines of the form
#   BenchmarkName-8   123   4567 ns/op   89 B/op   1 allocs/op   42.0 peak-nodes
# into JSON. Metric tokens come in (value, unit) pairs after the
# iteration count; units become object keys ("/" replaced to keep the
# keys shell-friendly downstream).
awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    line = sprintf("  {\"name\":\"%s\",\"iters\":%s", name, $2)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/%/, "pct", unit)
        line = line sprintf(",\"%s\":%s", unit, $i)
    }
    lines[n++] = line "}"
}
END {
    print "["
    for (i = 0; i < n; i++) print lines[i] (i < n - 1 ? "," : "")
    print "]"
}' "$TMP" >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmark(s))"
