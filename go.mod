module polis

go 1.22
